package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftnet"
	"ftnet/internal/fterr"
)

// testConfig hosts one small topology (guest side 192, 49k host nodes —
// the smallest d=2 instance FitParams produces).
func testConfig(t *testing.T, mutate func(*Config)) Config {
	t.Helper()
	cfg := Config{
		Topologies: []TopologyConfig{{ID: "main", D: 2, MinSide: 64, MaxEps: 0.5}},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.Bytes()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServeRoundtrip(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))
	_ = srv

	// Health and info reflect the committed fault-free generation 0.
	var info topologyInfo
	code, _ := doJSON(t, "GET", ts.URL+"/v1/topologies/main", nil, &info)
	if code != 200 || info.Generation != 0 || info.FaultCount != 0 {
		t.Fatalf("info = %d %+v", code, info)
	}
	if info.Side < 64 || info.Dims != 2 || info.HostNodes <= 0 {
		t.Fatalf("host parameters: %+v", info)
	}

	// A synchronous fault report returns the covering evaluation.
	var st stateResponse
	code, _ = doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{5, 77, 1234}}, &st)
	if code != 200 {
		t.Fatalf("POST faults: %d %+v", code, st)
	}
	if st.Generation < 1 || st.FaultCount != 3 {
		t.Fatalf("state after add: %+v", st)
	}

	// The served embedding is bit-identical to a from-scratch Extract of
	// exactly its committed fault set.
	var emb embeddingResponse
	code, _ = doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	if code != 200 {
		t.Fatalf("GET embedding: %d", code)
	}
	if len(emb.Faults) != 3 {
		t.Fatalf("embedding faults = %v", emb.Faults)
	}
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	for _, v := range emb.Faults {
		faults.Add(v)
	}
	want, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Map) != len(emb.Map) {
		t.Fatalf("map sizes: got %d want %d", len(emb.Map), len(want.Map))
	}
	for i := range want.Map {
		if want.Map[i] != emb.Map[i] {
			t.Fatalf("map differs from from-scratch Extract at %d", i)
		}
	}
	if got := fmt.Sprintf("%016x", MapChecksum(emb.Map)); got != emb.Checksum {
		t.Fatalf("checksum mismatch: computed %s, served %s", got, emb.Checksum)
	}

	// Repair: DELETE clears, and the embedding heals back to the
	// fault-free default.
	code, _ = doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{5, 77, 1234}}, &st)
	if code != 200 || st.FaultCount != 0 {
		t.Fatalf("DELETE faults: %d %+v", code, st)
	}
	var healed embeddingResponse
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &healed)
	empty, err := host.Extract(host.NewFaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range empty.Map {
		if empty.Map[i] != healed.Map[i] {
			t.Fatalf("healed map differs from fault-free Extract at %d", i)
		}
	}
}

func TestServeValidation(t *testing.T) {
	_, ts := startServer(t, testConfig(t, nil))

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"negative index", `{"nodes":[-1]}`, 400},
		{"out of range", `{"nodes":[99999999]}`, 400},
		{"empty batch", `{"nodes":[]}`, 400},
		{"malformed json", `{"nodes":`, 400},
	} {
		resp, err := http.Post(ts.URL+"/v1/topologies/main/faults", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// The wait parameter is a strict boolean: "false" is honored as
	// async, anything unparsable is rejected instead of silently
	// becoming a blocking request.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=no", mutationRequest{Nodes: []int{1}}, nil)
	if code != 400 {
		t.Fatalf("wait=no: status %d, want 400", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=false", mutationRequest{Nodes: []int{1}}, nil)
	if code != 202 {
		t.Fatalf("wait=false: status %d, want 202", code)
	}
	var st stateResponse
	code, _ = doJSON(t, "POST", ts.URL+"/v1/topologies/main/reembed", nil, &st)
	if code != 200 || st.FaultCount != 1 {
		t.Fatalf("flush after async add: %d %+v", code, st)
	}
	doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{1}}, nil)

	// An invalid batch must not have mutated anything.
	var info topologyInfo
	doJSON(t, "GET", ts.URL+"/v1/topologies/main", nil, &info)
	if info.FaultCount != 0 {
		t.Fatalf("invalid batches leaked %d faults", info.FaultCount)
	}

	// Unknown topology.
	code, _ = doJSON(t, "GET", ts.URL+"/v1/topologies/nope/embedding", nil, nil)
	if code != 404 {
		t.Fatalf("unknown topology: %d, want 404", code)
	}
}

// TestServeNotTolerated drives the daemon into ErrNotTolerated (a fully
// faulty host column cannot be masked) and back out, checking that the
// last good snapshot keeps being served throughout and that the healed
// state is re-verified against exactly its own fault set (the pending
// churn columns survive the failed evaluation).
func TestServeNotTolerated(t *testing.T) {
	srv, ts := startServer(t, testConfig(t, nil))
	topo := srv.topos["main"]
	side := topo.host.Side()
	numCols := topo.numCols
	rows := topo.host.HostNodes() / numCols

	// One benign fault first: the retained good state.
	var st stateResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{17}}, &st)
	if code != 200 {
		t.Fatalf("benign add: %d", code)
	}
	goodGen := st.Generation

	// Kill an entire host column: no band family can mask every row.
	col := side / 2
	killer := make([]int, rows)
	for r := range killer {
		killer[r] = r*numCols + col
	}
	var failBody struct {
		errorBody
		stateResponse
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: killer}, &failBody)
	if code != 422 {
		t.Fatalf("column kill: status %d, want 422", code)
	}
	if failBody.Error == "" || failBody.Generation != goodGen {
		t.Fatalf("422 body: %+v", failBody)
	}
	if failBody.Code != fterr.NotTolerated || failBody.Retryable {
		t.Fatalf("422 typed body: code=%q retryable=%v, want not_tolerated/terminal", failBody.Code, failBody.Retryable)
	}

	// Reads still serve the last good commit.
	var emb embeddingResponse
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	if emb.Generation != goodGen || len(emb.Faults) != 1 {
		t.Fatalf("served snapshot after failure: gen=%d faults=%d", emb.Generation, len(emb.Faults))
	}

	// Metrics record the ErrNotTolerated outcome.
	if n := topo.metrics.reembedNotTol.Load(); n == 0 {
		t.Fatal("not_tolerated counter not incremented")
	}

	// Heal the column; the next evaluation must commit and the result
	// must be bit-identical to a from-scratch Extract of the single
	// surviving fault.
	code, _ = doJSON(t, "DELETE", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: killer}, &st)
	if code != 200 || st.FaultCount != 1 {
		t.Fatalf("heal: %d %+v", code, st)
	}
	doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	faults.Add(17)
	want, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Map {
		if want.Map[i] != emb.Map[i] {
			t.Fatalf("healed embedding differs from from-scratch Extract at %d", i)
		}
	}
}

// TestServeBatchingPolicy exercises the two asynchronous triggers: the
// footprint threshold and the periodic flush.
func TestServeBatchingPolicy(t *testing.T) {
	t.Run("threshold", func(t *testing.T) {
		srv, ts := startServer(t, testConfig(t, func(c *Config) {
			c.MaxBatchCols = 3
			c.FlushInterval = 0 // no timer (disabled): only the threshold can trigger
		}))
		topo := srv.topos["main"]
		numCols := topo.numCols

		// Two async mutations in two distinct columns: below threshold,
		// nothing evaluates.
		for i := 0; i < 2; i++ {
			code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=0",
				mutationRequest{Nodes: []int{i}}, nil)
			if code != 202 {
				t.Fatalf("async POST: %d", code)
			}
		}
		time.Sleep(100 * time.Millisecond)
		if g := topo.metrics.generation.Load(); g != 0 {
			t.Fatalf("below-threshold batch evaluated early (generation %d)", g)
		}
		// A third distinct column crosses the threshold.
		code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=0",
			mutationRequest{Nodes: []int{2, 2 + numCols}}, nil)
		if code != 202 {
			t.Fatalf("async POST: %d", code)
		}
		waitFor(t, "threshold-triggered evaluation", func() bool {
			return topo.metrics.generation.Load() >= 1
		})
		var emb embeddingResponse
		doJSON(t, "GET", ts.URL+"/v1/topologies/main/embedding", nil, &emb)
		if len(emb.Faults) != 4 {
			t.Fatalf("committed faults = %v, want all 4", emb.Faults)
		}
	})

	t.Run("flush-interval", func(t *testing.T) {
		srv, ts := startServer(t, testConfig(t, func(c *Config) {
			c.MaxBatchCols = 1 << 20
			c.FlushInterval = 30 * time.Millisecond
		}))
		topo := srv.topos["main"]
		code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=0",
			mutationRequest{Nodes: []int{42}}, nil)
		if code != 202 {
			t.Fatalf("async POST: %d", code)
		}
		waitFor(t, "timer-triggered evaluation", func() bool {
			return topo.metrics.generation.Load() >= 1
		})
	})

	t.Run("explicit-reembed", func(t *testing.T) {
		_, ts := startServer(t, testConfig(t, func(c *Config) {
			c.MaxBatchCols = 1 << 20
			c.FlushInterval = 0
		}))
		code, _ := doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults?wait=0",
			mutationRequest{Nodes: []int{42}}, nil)
		if code != 202 {
			t.Fatalf("async POST: %d", code)
		}
		var st stateResponse
		code, _ = doJSON(t, "POST", ts.URL+"/v1/topologies/main/reembed", nil, &st)
		if code != 200 || st.FaultCount != 1 {
			t.Fatalf("explicit reembed: %d %+v", code, st)
		}
	})
}

// TestServeSnapshotRestore is the snapshot/restore round trip: commit
// state, snapshot to disk, tear the daemon down, start a fresh one from
// the same directory, and demand a bit-identical embedding response.
func TestServeSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) { c.SnapshotDir = dir })

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	var st stateResponse
	code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{5, 77, 1234, 40000}}, &st)
	if code != 200 {
		t.Fatalf("POST faults: %d", code)
	}
	var snapResp struct {
		stateResponse
		Path string `json:"path"`
	}
	code, _ = doJSON(t, "POST", ts1.URL+"/v1/topologies/main/snapshot", nil, &snapResp)
	if code != 200 || snapResp.Path == "" {
		t.Fatalf("POST snapshot: %d %+v", code, snapResp)
	}
	var emb1 embeddingResponse
	doJSON(t, "GET", ts1.URL+"/v1/topologies/main/embedding", nil, &emb1)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := startServer(t, cfg)
	var emb2 embeddingResponse
	doJSON(t, "GET", ts2.URL+"/v1/topologies/main/embedding", nil, &emb2)
	if emb2.Generation != emb1.Generation || emb2.Checksum != emb1.Checksum {
		t.Fatalf("restored state: gen=%d checksum=%s, want gen=%d checksum=%s",
			emb2.Generation, emb2.Checksum, emb1.Generation, emb1.Checksum)
	}
	if len(emb2.Faults) != len(emb1.Faults) {
		t.Fatalf("restored faults %v != %v", emb2.Faults, emb1.Faults)
	}
	for i := range emb1.Map {
		if emb1.Map[i] != emb2.Map[i] {
			t.Fatalf("restored embedding differs at %d", i)
		}
	}
	if srv2.topos["main"].metrics.restored.Load() != 1 {
		t.Fatal("restored gauge not set")
	}
}

// TestServeCloseFlushesPending verifies graceful shutdown: an accepted
// asynchronous mutation survives Close via the exit flush + snapshot.
func TestServeCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) {
		c.SnapshotDir = dir
		c.MaxBatchCols = 1 << 20
		c.FlushInterval = 0
	})
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults?wait=0", mutationRequest{Nodes: []int{123}}, nil)
	if code != 202 {
		t.Fatalf("async POST: %d", code)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := startServer(t, cfg)
	var emb embeddingResponse
	doJSON(t, "GET", ts2.URL+"/v1/topologies/main/embedding", nil, &emb)
	if len(emb.Faults) != 1 || emb.Faults[0] != 123 {
		t.Fatalf("pending mutation lost across shutdown: faults=%v", emb.Faults)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	_, ts := startServer(t, testConfig(t, nil))
	doJSON(t, "POST", ts.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{9}}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`ftnetd_reembed_total{topology="main",outcome="ok"}`,
		`ftnetd_reembed_total{topology="main",outcome="not_tolerated"} 0`,
		`ftnetd_batch_mutations_sum{topology="main"}`,
		`ftnetd_faults{topology="main"} 1`,
		`ftnetd_embedding_generation{topology="main"}`,
		`ftnetd_reembed_latency_seconds_sum{topology="main"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestParseTopologySpec(t *testing.T) {
	tc, err := ParseTopologySpec("id=main,d=2,side=200,eps=0.5")
	if err != nil || tc.ID != "main" || tc.D != 2 || tc.MinSide != 200 || tc.MaxEps != 0.5 {
		t.Fatalf("parse: %+v, %v", tc, err)
	}
	tc, err = ParseTopologySpec("id=x,side=64")
	if err != nil || tc.D != 2 || tc.MaxEps != 0.5 {
		t.Fatalf("defaults: %+v, %v", tc, err)
	}
	for _, bad := range []string{
		"",                       // nothing
		"side=64",                // no id
		"id=x",                   // no side
		"id=x,side=64,zz=1",      // unknown key
		"id=x,side=64,d=one",     // bad int
		"id=a/b,side=64",         // unsafe id
		"id=x,side=64,eps=-1",    // bad eps
		"id=x,side=64,d=1",       // bad dimension
		"id=x,side=0",            // bad side
		"id=x,side=64,eps=batch", // bad float
	} {
		if _, err := ParseTopologySpec(bad); err == nil {
			t.Errorf("ParseTopologySpec(%q) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Topologies: []TopologyConfig{{ID: "a", D: 2, MinSide: 64, MaxEps: 0.5}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{},
		{Topologies: []TopologyConfig{{ID: "a", D: 2, MinSide: 64, MaxEps: 0.5}, {ID: "a", D: 2, MinSide: 64, MaxEps: 0.5}}},
		{Topologies: []TopologyConfig{{ID: "a", D: 2, MinSide: 64, MaxEps: math.NaN()}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
}

// TestServeSnapshotUncommitted pins the "recorded reality never rolls
// back" contract across restarts: faults whose evaluation failed with
// ErrNotTolerated are still part of the session state, so a snapshot +
// restart must preserve them (as pending mutations on the committed
// base), not silently forget the operator's reports.
func TestServeSnapshotUncommitted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(c *Config) {
		c.SnapshotDir = dir
		c.FlushInterval = 0 // no timer: restored pending state stays pending
	})
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// Committed base: one benign fault.
	var st stateResponse
	code, _ := doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: []int{17}}, &st)
	if code != 200 {
		t.Fatalf("benign add: %d", code)
	}
	// Recorded but uncommittable: a full host column.
	topo := srv1.topos["main"]
	numCols := topo.numCols
	rows := topo.host.HostNodes() / numCols
	killer := make([]int, rows)
	for r := range killer {
		killer[r] = r*numCols + numCols/2
	}
	code, _ = doJSON(t, "POST", ts1.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: killer}, nil)
	if code != 422 {
		t.Fatalf("column kill: %d, want 422", code)
	}
	code, _ = doJSON(t, "POST", ts1.URL+"/v1/topologies/main/snapshot", nil, &st)
	if code != 200 || st.FaultCount != 1 {
		t.Fatalf("snapshot: %d %+v (committed state must be the benign fault only)", code, st)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the killer column must still be known. A flush evaluates
	// the restored pending delta and reports it as still not tolerated.
	srv2, ts2 := startServer(t, cfg)
	if got := srv2.topos["main"].metrics.pendingRequests.Load(); got == 0 {
		t.Fatal("restored daemon shows no pending mutations")
	}
	code, _ = doJSON(t, "POST", ts2.URL+"/v1/topologies/main/reembed", nil, nil)
	if code != 422 {
		t.Fatalf("reembed after restore: %d, want 422 (uncommitted faults lost?)", code)
	}
	// Healing the restored faults works and lands back on the base state.
	code, _ = doJSON(t, "DELETE", ts2.URL+"/v1/topologies/main/faults", mutationRequest{Nodes: killer}, &st)
	if code != 200 || st.FaultCount != 1 {
		t.Fatalf("heal after restore: %d %+v", code, st)
	}
	var emb embeddingResponse
	doJSON(t, "GET", ts2.URL+"/v1/topologies/main/embedding", nil, &emb)
	host, err := ftnet.NewRandomFaultTorus(2, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	faults := host.NewFaults()
	faults.Add(17)
	want, err := host.Extract(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Map {
		if want.Map[i] != emb.Map[i] {
			t.Fatalf("healed restored embedding differs from from-scratch Extract at %d", i)
		}
	}
}
