package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"ftnet/internal/fterr"

	"ftnet"
)

// diskSnapshot is the on-disk session state: the committed fault set and
// embedding generation, plus enough topology identity to refuse a
// restore onto a different host. The embedding itself is not stored —
// the pipeline is deterministic, so replaying the fault set reproduces
// it bit-identically; EmbeddingChecksum pins that claim at restore time.
type diskSnapshot struct {
	Version    int    `json:"version"`
	TopologyID string `json:"topology"`
	D          int    `json:"d"`
	Side       int    `json:"side"` // realized guest side, not MinSide
	HostNodes  int    `json:"host_nodes"`
	Generation int64  `json:"generation"`
	Faults     []int  `json:"faults"`
	// Edges is the committed edge-fault set: canonical (u < v) pairs,
	// sorted lexicographically. Absent in pre-edge-fault snapshots,
	// which restore with no edge faults.
	Edges [][2]int `json:"edges,omitempty"`
	// SessionFaults is the session's full fault set at snapshot time,
	// including mutations recorded after the last successful commit
	// (whose evaluation failed or had not run yet) — recorded reality
	// never rolls back, so it must survive a restart too. Restore
	// replays Faults (which must re-verify against EmbeddingChecksum)
	// and then the delta to SessionFaults, left pending. No omitempty:
	// null means "same as Faults", while an explicit empty list means
	// every committed fault was cleared after the commit — omitempty
	// would collapse the two.
	SessionFaults []int `json:"session_faults"`
	// SessionEdges is the edge analogue of SessionFaults, with the same
	// null-versus-empty distinction against Edges.
	SessionEdges [][2]int `json:"session_edges"`
	// EmbeddingChecksum is MapChecksum of the committed map, hex-encoded.
	EmbeddingChecksum string `json:"embedding_checksum"`
}

const snapshotVersion = 1

func (d *diskSnapshot) checksum() uint64 {
	v, err := strconv.ParseUint(d.EmbeddingChecksum, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// check refuses to restore state onto an incompatible host.
func (d *diskSnapshot) check(cfg TopologyConfig, host *ftnet.RandomFaultTorus) error {
	if d.Version != snapshotVersion {
		return fterr.New(fterr.Corrupt, "server.snapshot", "topology %s: snapshot version %d, want %d", cfg.ID, d.Version, snapshotVersion)
	}
	if d.TopologyID != cfg.ID {
		return fterr.New(fterr.Corrupt, "server.snapshot", "topology %s: snapshot belongs to topology %q", cfg.ID, d.TopologyID)
	}
	if d.D != host.Dims() || d.Side != host.Side() || d.HostNodes != host.HostNodes() {
		return fterr.New(fterr.Corrupt, "server.snapshot", "topology %s: snapshot host (d=%d side=%d nodes=%d) does not match configured host (d=%d side=%d nodes=%d)",
			cfg.ID, d.D, d.Side, d.HostNodes, host.Dims(), host.Side(), host.HostNodes())
	}
	return nil
}

// snapshotPath is <dir>/<id>.json; topology IDs are validated to be
// path-safe (see TopologyConfig.Validate).
func snapshotPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

// writeSnapshot persists a committed Snapshot atomically (temp file +
// rename), so a crash mid-write never corrupts the previous snapshot.
// session and sessionEdges are the full session fault sets (see
// diskSnapshot.SessionFaults); each is recorded only when it differs
// from its committed set.
func writeSnapshot(dir string, t *topology, snap *Snapshot, session []int, sessionEdges [][2]int) (string, error) {
	d := diskSnapshot{
		Version:           snapshotVersion,
		TopologyID:        t.cfg.ID,
		D:                 t.host.Dims(),
		Side:              t.host.Side(),
		HostNodes:         t.host.HostNodes(),
		Generation:        snap.Generation,
		Faults:            snap.FaultNodes,
		Edges:             snap.FaultEdges,
		EmbeddingChecksum: fmt.Sprintf("%016x", snap.Checksum),
	}
	if !intsEqual(session, snap.FaultNodes) {
		d.SessionFaults = session
		if d.SessionFaults == nil {
			d.SessionFaults = []int{} // nil means "same as Faults"
		}
	}
	if !edgesEqual(sessionEdges, snap.FaultEdges) {
		d.SessionEdges = sessionEdges
		if d.SessionEdges == nil {
			d.SessionEdges = [][2]int{} // nil means "same as Edges"
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.Marshal(&d)
	if err != nil {
		return "", err
	}
	path := snapshotPath(dir, t.cfg.ID)
	tmp, err := os.CreateTemp(dir, t.cfg.ID+".tmp-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgesEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadSnapshot reads a topology's snapshot file; a missing file is not
// an error (nil, nil) — the topology then starts fresh.
func loadSnapshot(dir, id string) (*diskSnapshot, error) {
	data, err := os.ReadFile(snapshotPath(dir, id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var d diskSnapshot
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fterr.Wrapf(fterr.Corrupt, "server.snapshot", err, "decode %s", snapshotPath(dir, id))
	}
	return &d, nil
}
