// Package server implements ftnetd: a daemon hosting one long-lived
// ftnet.Session per configured topology behind an HTTP/JSON wire
// protocol (see routes in server.go).
//
// The ftnet.Session contract is single-writer, so each topology owns one
// writer goroutine and a serialization queue. The queue coalesces: every
// mutation that arrives while a Reembed is in flight is applied to the
// session as soon as the writer frees up and covered by the *next*
// evaluation, so a burst of k concurrent fault reports costs a small
// constant number of Evals, not k (the acceptance contract of the race
// test). Asynchronous mutations (?wait=0) accumulate until the batching
// policy triggers: the accumulated footprint stops being small (>=
// MaxBatchCols distinct host columns), a flush interval elapses, an
// explicit POST .../reembed arrives, or a synchronous request joins the
// batch. Readers never enter the queue: GET .../embedding is served from
// an atomically swapped snapshot of the last committed embedding, so
// reads never block on the writer.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ftnet"
	"ftnet/internal/fault"
	"ftnet/internal/fterr"
	"ftnet/internal/wire"
)

// Snapshot is one committed state of a topology: a verified embedding
// and exactly the fault set it was committed with. Snapshots are
// immutable (never copy one by value: the binary-encoding cache is a
// sync.Once); readers share them by pointer.
type Snapshot struct {
	// Generation counts successful commits (monotone; restored from the
	// snapshot file across restarts).
	Generation int64
	// Emb is the verified embedding (stable: it does not alias the
	// session).
	Emb *ftnet.Embedding
	// FaultNodes is the fault set Emb was committed against, increasing.
	FaultNodes []int
	// FaultEdges is the edge-fault set Emb was committed against:
	// canonical (u < v) pairs, sorted lexicographically. Emb avoids the
	// charged endpoint of every listed edge (the Theorem 2 reduction).
	FaultEdges [][2]int
	// Checksum is the FNV-1a hash of Emb.Map (see MapChecksum).
	Checksum uint64

	// delta is this generation's entry in the topology's bounded diff
	// chain (set before the snapshot is published).
	delta *deltaRec
	// Lazy binary full encoding, shared by every reader of this
	// generation (see wireFull).
	binOnce sync.Once
	binData []byte
	binErr  error
	// Encoded binary delta responses keyed by since generation,
	// filled on first demand (see wireDeltaEncoded).
	deltaMu    sync.Mutex
	deltaCache map[int64][]byte
}

// MapChecksum hashes an embedding map for snapshot integrity checks:
// the pipeline is deterministic, so a restore that replays the fault set
// must reproduce the map bit-identically. It is the binary protocol's
// checksum too (wire.Checksum is the same function).
func MapChecksum(m []int) uint64 { return wire.Checksum(m) }

// errShutdown is returned to requests caught by a daemon shutdown: a
// coded fterr.Unavailable sentinel (retryable — another replica, or this
// one after a restart, can serve the retry).
var errShutdown error = &fterr.E{Code: fterr.Unavailable, Op: "server", Msg: "shutting down"}

type reqKind uint8

const (
	reqAdd reqKind = iota
	reqClear
	reqAddEdges
	reqClearEdges
	reqFlush
)

// request is one unit of writer work. reply is buffered (capacity 1) so
// the writer never blocks on an abandoned waiter.
type request struct {
	kind  reqKind
	nodes []int
	edges [][2]int    // for reqAddEdges/reqClearEdges
	reply chan result // nil for fire-and-forget mutations
}

type result struct {
	snap *Snapshot
	err  error
}

// topology is one hosted instance: host graph, session, writer queue.
type topology struct {
	cfg     TopologyConfig
	host    *ftnet.RandomFaultTorus
	ses     *ftnet.Session
	numCols int // host columns n^(d-1); column = node % numCols

	reqs  chan request
	stopc chan struct{}
	done  chan struct{}

	snap    atomic.Pointer[Snapshot]
	metrics *topoMetrics
	// curFaults is the session's full fault set — committed or not —
	// republished by the writer after every applied batch, so snapshot
	// writes can persist mutations whose evaluation failed (recorded
	// reality never rolls back, and must survive a restart too).
	curFaults atomic.Pointer[[]int]
	// curEdges is the session's full edge-fault set, same contract.
	curEdges atomic.Pointer[[][2]int]

	// Writer-goroutine state: the batch accumulated since the last
	// evaluation attempt.
	pendingMuts  int
	pendingNodes int
	pendingCols  map[int]struct{}
	waiters      []chan result

	maxBatchCols int
	flushEvery   time.Duration
	deltaRing    int          // bound on the delta chain length
	evalDelay    atomic.Int64 // test hook (nanoseconds): stretches the eval window

	// Watch subscribers: each holds a capacity-1 signal channel the
	// writer pokes (non-blocking) after every commit. Handlers read the
	// published snapshot themselves, so the writer never carries data to
	// a subscriber and never blocks on one.
	watchMu  sync.Mutex
	watchers map[chan struct{}]struct{}
}

// subscribe registers a commit-signal channel for a watch stream.
func (t *topology) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	t.watchMu.Lock()
	t.watchers[ch] = struct{}{}
	n := len(t.watchers)
	t.watchMu.Unlock()
	t.metrics.watchers.Store(int64(n))
	return ch
}

func (t *topology) unsubscribe(ch chan struct{}) {
	t.watchMu.Lock()
	delete(t.watchers, ch)
	n := len(t.watchers)
	t.watchMu.Unlock()
	t.metrics.watchers.Store(int64(n))
}

// notifyWatchers signals every subscriber that a new snapshot is
// published. Sends are non-blocking: a subscriber that has not drained
// its previous signal already owes itself a snapshot load, which will
// observe this commit too.
func (t *topology) notifyWatchers() {
	t.watchMu.Lock()
	for ch := range t.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	t.watchMu.Unlock()
}

// newTopology builds the host, optionally restores a disk snapshot, and
// commits the initial state synchronously, so a constructed topology
// always has a servable snapshot before its worker starts.
func newTopology(cfg TopologyConfig, policy Config, restore *diskSnapshot) (*topology, error) {
	host, err := ftnet.NewRandomFaultTorus(cfg.D, cfg.MinSide, cfg.MaxEps)
	if err != nil {
		return nil, fmt.Errorf("topology %s: %w", cfg.ID, err)
	}
	numCols := 1
	for i := 1; i < host.Dims(); i++ {
		numCols *= host.Side()
	}
	t := &topology{
		cfg:          cfg,
		host:         host,
		ses:          host.NewSession(),
		numCols:      numCols,
		reqs:         make(chan request, 256),
		stopc:        make(chan struct{}),
		done:         make(chan struct{}),
		metrics:      &topoMetrics{},
		pendingCols:  make(map[int]struct{}),
		maxBatchCols: policy.maxBatchCols(),
		flushEvery:   policy.flushInterval(),
		deltaRing:    policy.deltaRing(),
		watchers:     make(map[chan struct{}]struct{}),
	}
	gen := int64(0)
	if restore != nil {
		if err := restore.check(cfg, host); err != nil {
			return nil, err
		}
		if err := t.ses.AddFaultsChecked(restore.Faults...); err != nil {
			return nil, fmt.Errorf("topology %s: restore: %w", cfg.ID, err)
		}
		if err := t.ses.AddEdgeFaultsChecked(restore.Edges...); err != nil {
			return nil, fmt.Errorf("topology %s: restore: %w", cfg.ID, err)
		}
		gen = restore.Generation
		t.metrics.restored.Store(1)
	}
	// ReembedDelta rather than Reembed: the initial commit is linked as a
	// full resync boundary below, so the session's delta accumulator must
	// be drained here — otherwise the cold evaluation's full-rewrite flag
	// leaks into the FIRST real commit, turning it into a needless 410 for
	// every client that already holds this head (clients reconnecting
	// after a restart would resync twice).
	emb, _, err := t.ses.ReembedDelta()
	if err != nil {
		return nil, fmt.Errorf("topology %s: initial reembed: %w", cfg.ID, err)
	}
	snap := &Snapshot{
		Generation: gen,
		Emb:        emb,
		FaultNodes: t.ses.FaultNodes(),
		FaultEdges: t.ses.FaultEdges(),
		Checksum:   MapChecksum(emb.Map),
	}
	if restore != nil && snap.Checksum != restore.checksum() {
		return nil, fterr.New(fterr.Corrupt, "server.snapshot", "topology %s: restored embedding checksum %016x does not match snapshot %016x",
			cfg.ID, snap.Checksum, restore.checksum())
	}
	// The initial commit is a resync boundary: no diff exists to anything
	// older (in particular not across a restart).
	t.linkDelta(nil, snap, nil)
	t.snap.Store(snap)
	t.metrics.reembedOK.Add(1)
	t.metrics.faults.Store(int64(len(snap.FaultNodes)))
	t.metrics.edgeFaults.Store(int64(len(snap.FaultEdges)))
	t.metrics.generation.Store(gen)
	if restore != nil {
		if err := t.restoreUncommitted(restore); err != nil {
			return nil, err
		}
	}
	t.publishFaults()
	return t, nil
}

// restoreUncommitted replays the snapshot's session-level delta: the
// mutations recorded after the last successful commit (adds beyond, and
// clears of, the committed fault and edge-fault sets). They are applied
// without demanding a successful evaluation — the pre-restart state may
// well have been beyond tolerance — and left pending for the batching
// policy, exactly as they were before the restart.
func (t *topology) restoreUncommitted(restore *diskSnapshot) error {
	var adds, clears []int
	if restore.SessionFaults != nil {
		adds, clears = sortedDiff(restore.Faults, restore.SessionFaults)
	}
	var edgeAdds, edgeClears [][2]int
	if restore.SessionEdges != nil {
		edgeAdds, edgeClears = edgeDiff(restore.Edges, restore.SessionEdges)
	}
	if len(adds)+len(clears)+len(edgeAdds)+len(edgeClears) == 0 {
		return nil
	}
	if err := t.ses.AddFaultsChecked(adds...); err != nil {
		return fmt.Errorf("topology %s: restore uncommitted: %w", t.cfg.ID, err)
	}
	if err := t.ses.ClearFaultsChecked(clears...); err != nil {
		return fmt.Errorf("topology %s: restore uncommitted: %w", t.cfg.ID, err)
	}
	if err := t.ses.AddEdgeFaultsChecked(edgeAdds...); err != nil {
		return fmt.Errorf("topology %s: restore uncommitted: %w", t.cfg.ID, err)
	}
	if err := t.ses.ClearEdgeFaultsChecked(edgeClears...); err != nil {
		return fmt.Errorf("topology %s: restore uncommitted: %w", t.cfg.ID, err)
	}
	t.pendingMuts = 1
	t.pendingNodes = len(adds) + len(clears) + len(edgeAdds) + len(edgeClears)
	for _, v := range adds {
		t.pendingCols[v%t.numCols] = struct{}{}
	}
	for _, v := range clears {
		t.pendingCols[v%t.numCols] = struct{}{}
	}
	for _, e := range edgeAdds {
		t.pendingCols[fault.ChargedEndpoint(e[0], e[1])%t.numCols] = struct{}{}
	}
	for _, e := range edgeClears {
		t.pendingCols[fault.ChargedEndpoint(e[0], e[1])%t.numCols] = struct{}{}
	}
	t.metrics.pendingRequests.Store(1)
	return nil
}

// sortedDiff splits two increasing node lists into session-only (adds)
// and committed-only (clears) elements.
func sortedDiff(committed, session []int) (adds, clears []int) {
	i, j := 0, 0
	for i < len(committed) || j < len(session) {
		switch {
		case i == len(committed) || (j < len(session) && session[j] < committed[i]):
			adds = append(adds, session[j])
			j++
		case j == len(session) || committed[i] < session[j]:
			clears = append(clears, committed[i])
			i++
		default:
			i++
			j++
		}
	}
	return adds, clears
}

// edgeDiff splits two lexicographically sorted canonical edge lists into
// session-only (adds) and committed-only (clears) edges.
func edgeDiff(committed, session [][2]int) (adds, clears [][2]int) {
	less := func(a, b [2]int) bool {
		return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
	}
	i, j := 0, 0
	for i < len(committed) || j < len(session) {
		switch {
		case i == len(committed) || (j < len(session) && less(session[j], committed[i])):
			adds = append(adds, session[j])
			j++
		case j == len(session) || less(committed[i], session[j]):
			clears = append(clears, committed[i])
			i++
		default:
			i++
			j++
		}
	}
	return adds, clears
}

// publishFaults republishes the session's full fault and edge-fault sets
// for snapshot writers. Called by the writer goroutine (and
// construction) only.
func (t *topology) publishFaults() {
	s := t.ses.FaultNodes()
	t.curFaults.Store(&s)
	e := t.ses.FaultEdges()
	t.curEdges.Store(&e)
}

// submit enqueues a request unless the daemon is stopping.
func (t *topology) submit(req request) error {
	select {
	case t.reqs <- req:
		return nil
	case <-t.stopc:
		return errShutdown
	}
}

// run is the single-writer loop. Only this goroutine touches t.ses and
// the pending-batch state.
func (t *topology) run() {
	defer close(t.done)
	var tick <-chan time.Time
	if t.flushEvery > 0 {
		ticker := time.NewTicker(t.flushEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-t.stopc:
			t.shutdown()
			return
		case req := <-t.reqs:
			force := t.apply(req)
			// Coalesce everything already queued — this is where a burst
			// that piled up behind an in-flight eval becomes one batch.
		drain:
			for {
				select {
				case more := <-t.reqs:
					if t.apply(more) {
						force = true
					}
				default:
					break drain
				}
			}
			t.publishFaults()
			if force || len(t.waiters) > 0 || len(t.pendingCols) >= t.maxBatchCols {
				t.eval()
			}
		case <-tick:
			if t.pendingMuts > 0 {
				t.eval()
			}
		}
	}
}

// apply folds one request into the pending batch and reports whether it
// forces an evaluation.
func (t *topology) apply(req request) bool {
	switch req.kind {
	case reqFlush:
		if req.reply != nil {
			t.waiters = append(t.waiters, req.reply)
		}
		return true
	case reqAdd, reqClear:
		var err error
		if req.kind == reqAdd {
			err = t.ses.AddFaultsChecked(req.nodes...)
		} else {
			err = t.ses.ClearFaultsChecked(req.nodes...)
		}
		if err != nil {
			// The handler validates indices before enqueueing, so this is
			// an internal inconsistency; fail the request, not the batch.
			if req.reply != nil {
				req.reply <- result{err: err}
			}
			return false
		}
		t.pendingMuts++
		t.pendingNodes += len(req.nodes)
		for _, v := range req.nodes {
			t.pendingCols[v%t.numCols] = struct{}{}
		}
		t.metrics.pendingRequests.Store(int64(t.pendingMuts))
		if req.reply != nil {
			t.waiters = append(t.waiters, req.reply)
		}
	case reqAddEdges, reqClearEdges:
		var err error
		if req.kind == reqAddEdges {
			err = t.ses.AddEdgeFaultsChecked(req.edges...)
		} else {
			err = t.ses.ClearEdgeFaultsChecked(req.edges...)
		}
		if err != nil {
			// Endpoints were validated at the API boundary (see
			// edgeMutationHandler); an error here is an internal
			// inconsistency and fails only this request.
			if req.reply != nil {
				req.reply <- result{err: err}
			}
			return false
		}
		t.pendingMuts++
		t.pendingNodes += len(req.edges)
		for _, e := range req.edges {
			// An edge fault only dirties its charged endpoint's column.
			t.pendingCols[fault.ChargedEndpoint(e[0], e[1])%t.numCols] = struct{}{}
		}
		t.metrics.pendingRequests.Store(int64(t.pendingMuts))
		if req.reply != nil {
			t.waiters = append(t.waiters, req.reply)
		}
	}
	return false
}

// eval evaluates the accumulated batch with one Reembed and publishes
// the outcome: a fresh snapshot on success, the error to every waiter on
// failure. A failed (ErrNotTolerated) evaluation leaves the previous
// snapshot served and the session's pending churn intact — the engine
// re-checks every mutated column once a later batch heals the state.
func (t *topology) eval() {
	muts, nodes := t.pendingMuts, t.pendingNodes
	t.pendingMuts, t.pendingNodes = 0, 0
	clear(t.pendingCols)
	waiters := t.waiters
	t.waiters = nil
	t.metrics.pendingRequests.Store(0)

	if d := t.evalDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	start := time.Now()
	emb, d, err := t.ses.ReembedDelta()
	t.metrics.reembedNanos.Add(time.Since(start).Nanoseconds())
	t.metrics.batchMutations.Add(int64(muts))
	t.metrics.batchNodes.Add(int64(nodes))

	var res result
	switch {
	case err == nil:
		prev := t.snap.Load()
		snap := &Snapshot{
			Generation: prev.Generation + 1,
			Emb:        emb,
			FaultNodes: t.ses.FaultNodes(),
			FaultEdges: t.ses.FaultEdges(),
			Checksum:   MapChecksum(emb.Map),
		}
		t.linkDelta(prev, snap, d)
		t.snap.Store(snap)
		t.metrics.reembedOK.Add(1)
		t.metrics.faults.Store(int64(len(snap.FaultNodes)))
		t.metrics.edgeFaults.Store(int64(len(snap.FaultEdges)))
		t.metrics.generation.Store(snap.Generation)
		t.notifyWatchers()
		res = result{snap: snap}
	case errors.Is(err, ftnet.ErrNotTolerated):
		t.metrics.reembedNotTol.Add(1)
		res = result{err: err}
	default:
		t.metrics.reembedErr.Add(1)
		res = result{err: err}
	}
	for _, w := range waiters {
		w <- res
	}
}

// shutdown applies every request still queued (an asynchronous mutation
// was already answered 202 Accepted, so dropping it would break that
// promise) and flushes with a final eval, so a snapshot written at exit
// reflects everything the daemon accepted. Remaining waiters get the
// flush outcome; submit stops accepting once stopc is closed.
func (t *topology) shutdown() {
	for {
		select {
		case req := <-t.reqs:
			t.apply(req)
		default:
			t.publishFaults()
			if t.pendingMuts > 0 || len(t.waiters) > 0 {
				t.eval()
			}
			return
		}
	}
}
