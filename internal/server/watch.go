package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// watchEvent is the payload of one SSE event on .../watch. Every event
// describes a committed, served snapshot: its generation, map checksum,
// and exact fault set (enough for a client to audit the stream against
// the serve path).
type watchEvent struct {
	Topology   string `json:"topology"`
	Generation int64  `json:"generation"`
	Checksum   string `json:"checksum"`
	Faults     []int  `json:"faults"`
	// ChangedCols counts the columns this generation changed; -1 when
	// unknown (the event bridges a gap — see the resync event type).
	ChangedCols int `json:"changed_cols"`
}

// renderWatchEvent renders one SSE frame. Marshalling a watchEvent
// cannot fail (plain ints, strings and an int slice), so errors are
// impossible by construction.
func renderWatchEvent(name string, ev watchEvent) []byte {
	data, err := json.Marshal(ev)
	if err != nil {
		panic(err)
	}
	return []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", name, data))
}

// handleWatch streams generation commits as server-sent events
// (text/event-stream). The protocol:
//
//   - On subscribe, one "commit" event for the current head establishes
//     the baseline.
//   - Each later commit produces one "commit" event per generation, in
//     order, with no generation skipped or duplicated — the per-commit
//     records of the delta ring let a slow subscriber catch up
//     generation by generation even when the writer raced ahead.
//   - When the ring no longer covers the gap (subscriber slower than
//     DeltaRing commits, or a full rewrite in between), a single
//     "resync" event carries the head state instead; the client
//     re-fetches the full embedding, exactly like a 410 on ?since=.
//
// The writer never blocks on subscribers: it pokes a capacity-1 signal
// channel and moves on; this handler reads published snapshots on its
// own time. The stream ends when the client disconnects or the daemon
// shuts down (DisconnectWatchers).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch := t.subscribe()
	defer t.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// emitRaw writes pre-rendered event bytes; emit renders ad hoc (for
	// the subscribe-time baseline and resync events, which are rare —
	// per-commit events stream the bytes cached on the delta record).
	emitRaw := func(data []byte) bool {
		if _, err := w.Write(data); err != nil {
			return false
		}
		fl.Flush()
		t.metrics.watchEvents.Add(1)
		return true
	}
	emit := func(name string, ev watchEvent) bool {
		return emitRaw(renderWatchEvent(name, ev))
	}

	// Baseline: the head at subscribe time.
	snap := t.snap.Load()
	last := snap.Generation
	if !emit("commit", watchEvent{
		Topology:    t.cfg.ID,
		Generation:  snap.Generation,
		Checksum:    fmt.Sprintf("%016x", snap.Checksum),
		Faults:      snap.FaultNodes,
		ChangedCols: -1,
	}) {
		return
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.stopc:
			return
		case <-s.watchc:
			return
		case <-ch:
		}
		snap := t.snap.Load()
		if snap.Generation <= last {
			continue // stale signal: this commit was already covered
		}
		// Collect the per-generation records bridging (last, head],
		// oldest-first. A nil or full record inside the gap means the ring
		// evicted part of it: resync.
		recs := make([]*deltaRec, 0, snap.Generation-last)
		gapped := false
		for rec := snap.delta; ; {
			if rec == nil {
				gapped = true
				break
			}
			recs = append(recs, rec)
			if rec.gen == last+1 {
				break
			}
			if rec.full {
				gapped = true
				break
			}
			rec = rec.prev.Load()
		}
		if gapped {
			if !emit("resync", watchEvent{
				Topology:    t.cfg.ID,
				Generation:  snap.Generation,
				Checksum:    fmt.Sprintf("%016x", snap.Checksum),
				Faults:      snap.FaultNodes,
				ChangedCols: -1,
			}) {
				return
			}
			last = snap.Generation
			continue
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if !emitRaw(recs[i].commitEvent(t.cfg.ID)) {
				return
			}
		}
		last = snap.Generation
	}
}
