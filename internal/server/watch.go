package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ftnet/internal/fterr"
)

// watchEvent is the payload of one SSE event on .../watch. Every event
// describes a committed, served snapshot: its generation, map checksum,
// and exact fault set (enough for a client to audit the stream against
// the serve path).
type watchEvent struct {
	Topology   string `json:"topology"`
	Generation int64  `json:"generation"`
	Checksum   string `json:"checksum"`
	Faults     []int  `json:"faults"`
	// EdgeFaults is the committed edge-fault set: canonical (u < v)
	// pairs, sorted lexicographically.
	EdgeFaults [][2]int `json:"edge_faults"`
	// ChangedCols counts the columns this generation changed; -1 when
	// unknown (the event bridges a gap — see the resync event type).
	ChangedCols int `json:"changed_cols"`
}

// edgesOrEmpty normalizes a nil edge list to an empty one, so JSON
// renders "[]" rather than "null" on every wire document.
func edgesOrEmpty(edges [][2]int) [][2]int {
	if edges == nil {
		return [][2]int{}
	}
	return edges
}

// renderWatchEvent renders one SSE frame. Marshalling a watchEvent
// cannot fail (plain ints, strings and an int slice), so errors are
// impossible by construction.
func renderWatchEvent(name string, ev watchEvent) []byte {
	data, err := json.Marshal(ev)
	if err != nil {
		panic(err)
	}
	return []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", name, data))
}

// handleWatch streams generation commits as server-sent events
// (text/event-stream). The protocol:
//
//   - On subscribe, one "commit" event for the current head establishes
//     the baseline. With ?since=g the baseline is replaced by catch-up:
//     one "commit" event per generation in (g, head], in order — a
//     reconnecting client passes its last seen generation and resumes
//     with no commit skipped or duplicated.
//   - Each later commit produces one "commit" event per generation, in
//     order, with no generation skipped or duplicated — the per-commit
//     records of the delta ring let a slow subscriber catch up
//     generation by generation even when the writer raced ahead.
//   - When the ring no longer covers the gap (subscriber slower than
//     DeltaRing commits, a full rewrite in between, or a ?since= from
//     before a restart), a single "resync" event carries the head state
//     instead; the client re-fetches the full embedding, exactly like a
//     410 on ?since=.
//
// The writer never blocks on subscribers: it pokes a capacity-1 signal
// channel and moves on; this handler reads published snapshots on its
// own time. The stream ends when the client disconnects or the daemon
// shuts down (DisconnectWatchers).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	t := s.topo(w, r)
	if t == nil {
		return
	}
	since := int64(-1)
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			s.writeErr(w, fterr.New(fterr.Invalid, "server", "bad since parameter %q (want a non-negative generation)", raw))
			return
		}
		since = v
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErr(w, fterr.New(fterr.Internal, "server", "streaming unsupported by this connection"))
		return
	}
	ch := t.subscribe()
	defer t.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// emitRaw writes pre-rendered event bytes; emit renders ad hoc (for
	// the subscribe-time baseline and resync events, which are rare —
	// per-commit events stream the bytes cached on the delta record).
	emitRaw := func(data []byte) bool {
		if _, err := w.Write(data); err != nil {
			return false
		}
		fl.Flush()
		t.metrics.watchEvents.Add(1)
		return true
	}
	emit := func(name string, ev watchEvent) bool {
		return emitRaw(renderWatchEvent(name, ev))
	}
	headEvent := func(name string, snap *Snapshot) bool {
		return emit(name, watchEvent{
			Topology:    t.cfg.ID,
			Generation:  snap.Generation,
			Checksum:    fmt.Sprintf("%016x", snap.Checksum),
			Faults:      snap.FaultNodes,
			EdgeFaults:  edgesOrEmpty(snap.FaultEdges),
			ChangedCols: -1,
		})
	}
	// catchUp streams one "commit" event per generation in (last, head],
	// oldest-first, from the delta ring — or a single "resync" event
	// when the ring cannot bridge the gap. Returns the new last
	// generation and whether the stream is still writable.
	catchUp := func(snap *Snapshot, last int64) (int64, bool) {
		recs := make([]*deltaRec, 0, snap.Generation-last)
		gapped := false
		for rec := snap.delta; ; {
			if rec == nil {
				gapped = true
				break
			}
			recs = append(recs, rec)
			if rec.gen == last+1 {
				break
			}
			if rec.full {
				gapped = true
				break
			}
			rec = rec.prev.Load()
		}
		if gapped {
			return snap.Generation, headEvent("resync", snap)
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if !emitRaw(recs[i].commitEvent(t.cfg.ID)) {
				return snap.Generation, false
			}
		}
		return snap.Generation, true
	}

	snap := t.snap.Load()
	var last int64
	switch {
	case since < 0:
		// Plain subscribe: the head at subscribe time is the baseline.
		last = snap.Generation
		if !headEvent("commit", snap) {
			return
		}
	case since > snap.Generation:
		// The client saw a generation this daemon never committed — it
		// outlived a restart. Only a full refetch re-anchors it.
		if !headEvent("resync", snap) {
			return
		}
		last = snap.Generation
	case since == snap.Generation:
		// Already caught up: stream silently until the next commit.
		last = since
	default:
		var ok bool
		if last, ok = catchUp(snap, since); !ok {
			return
		}
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.stopc:
			return
		case <-s.watchc:
			return
		case <-ch:
		}
		snap := t.snap.Load()
		if snap.Generation <= last {
			continue // stale signal: this commit was already covered
		}
		var ok bool
		if last, ok = catchUp(snap, last); !ok {
			return
		}
	}
}
