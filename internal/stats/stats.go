// Package stats provides the statistics the experiment suite needs:
// Wilson score confidence intervals for survival probabilities, binomial
// tail bounds for supernode sizing, summary helpers, and an aligned
// table writer for the paper-style result tables.
//
// Trial execution lives in internal/parallel: its engine runs trials
// across a worker pool with deterministic per-trial PCG streams and
// aggregates outcomes into the Result type defined here.
package stats

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

// Outcome classifies one Monte-Carlo trial.
type Outcome int

const (
	// Success: the construction survived (embedding verified).
	Success Outcome = iota
	// Failure: the construction did not survive (an expected event, e.g.
	// an unhealthy fault pattern).
	Failure
)

// Result summarizes a Monte-Carlo run.
type Result struct {
	Trials    int
	Successes int
	Rate      float64 // Successes / Trials
	Lo, Hi    float64 // 95% Wilson interval
}

func (r Result) String() string {
	return fmt.Sprintf("%d/%d = %.3f [%.3f, %.3f]", r.Successes, r.Trials, r.Rate, r.Lo, r.Hi)
}

// NewResult builds a Result from raw counts, filling in the rate and the
// 95% Wilson interval.
func NewResult(successes, trials int) Result {
	res := Result{Trials: trials, Successes: successes}
	if trials > 0 {
		res.Rate = float64(successes) / float64(trials)
	}
	res.Lo, res.Hi = Wilson(successes, trials, 1.96)
	return res
}

// Width returns the width of the confidence interval; the parallel
// engine's early-stopping rule compares it against a target.
func (r Result) Width() float64 { return r.Hi - r.Lo }

// Wilson returns the Wilson score interval for a binomial proportion.
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Table writes aligned experiment tables.
type Table struct {
	tw *tabwriter.Writer
}

// NewTable starts a table with the given header cells.
func NewTable(w io.Writer, headers ...string) *Table {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	t := &Table{tw: tw}
	t.Row(toAny(headers)...)
	return t
}

// Row appends one row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprintf(t.tw, "%v", c)
	}
	fmt.Fprintln(t.tw)
}

// Flush renders the table.
func (t *Table) Flush() error { return t.tw.Flush() }

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// BinomTail returns P(X >= k) for X ~ Binomial(n, p), computed in
// log-space for numerical stability. Used to size supernodes so the
// expected number of bad supernodes stays below the base construction's
// tolerance (the explicit finite-scale form of Theorem 1's constant
// tuning).
func BinomTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	total := 0.0
	for i := k; i <= n; i++ {
		total += math.Exp(lchoose(n, i) + float64(i)*lp + float64(n-i)*lq)
	}
	if total > 1 {
		total = 1
	}
	return total
}

func lchoose(n, k int) float64 {
	return lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0<=q<=1) of xs by nearest-rank on a
// sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sortFloats(s)
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
