package stats

import (
	"strings"
	"testing"
)

func TestNewResult(t *testing.T) {
	res := NewResult(75, 100)
	if res.Trials != 100 || res.Successes != 75 {
		t.Errorf("got %+v", res)
	}
	if res.Rate != 0.75 {
		t.Errorf("Rate = %v", res.Rate)
	}
	if res.Lo >= res.Rate || res.Hi <= res.Rate {
		t.Errorf("interval [%v,%v] does not bracket %v", res.Lo, res.Hi, res.Rate)
	}
	if w := res.Width(); w != res.Hi-res.Lo || w <= 0 {
		t.Errorf("Width = %v", w)
	}
	if zero := NewResult(0, 0); zero.Rate != 0 || zero.Lo != 0 || zero.Hi != 1 {
		t.Errorf("NewResult(0,0) = %+v", zero)
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(95, 100, 1.96)
	if lo < 0.87 || lo > 0.93 || hi < 0.97 || hi > 1.0 {
		t.Errorf("Wilson(95,100) = [%v, %v]", lo, hi)
	}
	lo, hi = Wilson(0, 10, 1.96)
	if lo != 0 || hi < 0.2 || hi > 0.4 {
		t.Errorf("Wilson(0,10) = [%v, %v]", lo, hi)
	}
	lo, hi = Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%v, %v]", lo, hi)
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	tab := NewTable(&sb, "n", "rate")
	tab.Row(100, 0.5)
	tab.Row(2000, 0.125)
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "2000") {
		t.Errorf("table output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 {
		t.Errorf("Quantile extremes wrong")
	}
	if Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty input should return 0")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestBinomTail(t *testing.T) {
	// P(X >= 0) = 1; P(X >= n+1) = 0.
	if BinomTail(10, 0.5, 0) != 1 {
		t.Error("P(X>=0) != 1")
	}
	if BinomTail(10, 0.5, 11) != 0 {
		t.Error("P(X>=n+1) != 0")
	}
	// Degenerate probabilities.
	if BinomTail(10, 0, 1) != 0 || BinomTail(10, 1, 10) != 1 {
		t.Error("degenerate p wrong")
	}
	// Symmetric binomial: P(X >= 5 | n=10, p=0.5) ~ 0.623.
	got := BinomTail(10, 0.5, 5)
	if got < 0.62 || got > 0.63 {
		t.Errorf("BinomTail(10,0.5,5) = %v, want ~0.623", got)
	}
	// Compare against a direct sum for a few cases.
	direct := func(n int, p float64, k int) float64 {
		total := 0.0
		for i := k; i <= n; i++ {
			c := 1.0
			for j := 0; j < i; j++ {
				c = c * float64(n-j) / float64(j+1)
			}
			prob := c
			for j := 0; j < i; j++ {
				prob *= p
			}
			for j := 0; j < n-i; j++ {
				prob *= 1 - p
			}
			total += prob
		}
		return total
	}
	for _, c := range []struct {
		n int
		p float64
		k int
	}{{20, 0.1, 4}, {15, 0.9, 12}, {8, 0.3, 1}} {
		want := direct(c.n, c.p, c.k)
		got := BinomTail(c.n, c.p, c.k)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("BinomTail(%d,%v,%d) = %v, want %v", c.n, c.p, c.k, got, want)
		}
	}
}

func TestBinomTailMonotone(t *testing.T) {
	prev := 1.1
	for k := 0; k <= 30; k++ {
		v := BinomTail(30, 0.4, k)
		if v > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d: %v > %v", k, v, prev)
		}
		prev = v
	}
}

func TestResultString(t *testing.T) {
	r := Result{Trials: 10, Successes: 5, Rate: 0.5, Lo: 0.2, Hi: 0.8}
	if !strings.Contains(r.String(), "5/10") {
		t.Errorf("String = %q", r.String())
	}
}
