// Package supernode implements A^d_n, the paper's Theorem 1 construction:
// an O(log log N)-degree network with c*n^d nodes that, after every node
// fails with constant probability p and every edge with constant
// probability q, still contains a fault-free d-dimensional n-torus with
// probability 1 - n^{-Omega(log log n)}.
//
// Construction (paper, Section 4): take B^d_{n/k} (internal/core) and
// replace every node by a clique of h = c k^2/(1+eps) nodes (a supernode);
// adjacent supernodes are joined completely, so the degree is
// O(h) = O(k^2) = O(log log n) for k = sqrt(alpha log log n).
//
// Survival argument, implemented literally:
//   - a node v is GOOD if it is non-faulty and, for its own and every
//     adjacent supernode U, at most 2*sqrt(q)*h of v's half-edges toward U
//     are faulty (the half-edge trick makes supernode goodness independent);
//   - a supernode is GOOD if it has at least k^d + 2d*(2*sqrt(q)*h) good
//     nodes;
//   - Theorem 2 applied to the supernode-level fault set yields an
//     (n/k)-torus of good supernodes;
//   - the n-torus is divided into k x ... x k submeshes M_I, and a greedy
//     incremental map f places each guest node into an unused good node of
//     its supernode U_I so that all edges to previously placed neighbors
//     are fault-free; goodness guarantees a valid choice always exists.
package supernode

import (
	"fmt"
	"math"

	"ftnet/internal/core"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
	"ftnet/internal/torus"
)

// Params fixes an instance of A^d_n.
type Params struct {
	Base core.Params // parameters of the underlying B^d_{n/k}
	K    int         // submesh side k >= 1 (paper: sqrt(alpha log log n))
	H    int         // supernode size h (paper: c k^2/(1+eps))
	Q    float64     // assumed edge-failure probability (sets goodness thresholds)
}

// Validate checks that the goodness thresholds are satisfiable.
func (p Params) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.K < 1 {
		return fmt.Errorf("supernode: k = %d < 1", p.K)
	}
	if p.Q < 0 || p.Q >= 1 {
		return fmt.Errorf("supernode: q = %v out of [0,1)", p.Q)
	}
	if p.H < p.GoodSupernodeThreshold() {
		return fmt.Errorf("supernode: h = %d below good-supernode threshold %d (k^d + 4d*sqrt(q)*h); increase h or decrease q",
			p.H, p.GoodSupernodeThreshold())
	}
	return nil
}

// Side returns the guest torus side n = k * nB.
func (p Params) Side() int { return p.K * p.Base.N() }

// NumSupernodes returns the node count of the underlying B^d_{n/k}.
func (p Params) NumSupernodes() int { return p.Base.NumNodes() }

// NumNodes returns the total node count h * |B^d_{n/k}| = c n^d.
func (p Params) NumNodes() int { return p.H * p.NumSupernodes() }

// C returns the node-redundancy constant c with |A| = c n^d.
func (p Params) C() float64 {
	return float64(p.NumNodes()) / math.Pow(float64(p.Side()), float64(p.Base.D))
}

// Degree returns the uniform degree (h-1) + (6d-2)h.
func (p Params) Degree() int { return p.H - 1 + p.Base.Degree()*p.H }

// HalfEdgeThreshold returns ceil(2*sqrt(q)*h), the per-supernode faulty
// half-edge budget in the goodness definition.
func (p Params) HalfEdgeThreshold() int {
	return int(math.Ceil(2 * math.Sqrt(p.Q) * float64(p.H)))
}

// GoodSupernodeThreshold returns k^d + 2d*ceil(2*sqrt(q)*h), the number of
// good nodes a good supernode must have. (For d=2 this is the paper's
// k^2 + (8*sqrt(q))h.)
func (p Params) GoodSupernodeThreshold() int {
	kd := 1
	for i := 0; i < p.Base.D; i++ {
		kd *= p.K
	}
	return kd + 2*p.Base.D*p.HalfEdgeThreshold()
}

// FitParams derives A^d_n parameters the way Theorem 1 does: given the
// target minimum side, node probability p, edge probability q and
// redundancy c > 1/(1-p), it picks k ~ sqrt(alpha*log log n), eps
// satisfying (1-p) > (1+eps)/c + 8 sqrt(q), and h = c k^2/(1+eps).
func FitParams(d, minSide int, pNode, q, c float64) (Params, error) {
	if pNode < 0 || pNode >= 1 {
		return Params{}, fmt.Errorf("supernode: p = %v out of [0,1)", pNode)
	}
	if c <= 1/(1-pNode) {
		return Params{}, fmt.Errorf("supernode: c = %v must exceed 1/(1-p) = %v", c, 1/(1-pNode))
	}
	slack := (1 - pNode) - 1/c - 8*math.Sqrt(q)
	if slack <= 0 {
		return Params{}, fmt.Errorf("supernode: q = %v too large: (1-p) - 1/c - 8*sqrt(q) = %v <= 0", q, slack)
	}
	// eps with (1+eps)/c + 8 sqrt(q) < 1-p, capped at 1/2 for Theorem 2.
	eps := math.Min(0.5, c*slack/2)
	// k ~ sqrt(log log n): tiny at any simulable scale.
	k := int(math.Max(2, math.Round(math.Sqrt(math.Log2(math.Log2(float64(minSide)+4)+4)+4))))
	base, err := core.FitParams(d, (minSide+k-1)/k, eps)
	if err != nil {
		return Params{}, err
	}
	kd := 1.0
	for i := 0; i < d; i++ {
		kd *= float64(k)
	}
	h := int(math.Ceil(c * kd / (1 + base.Eps())))
	p := Params{Base: base, K: k, H: h, Q: q}
	// Grow h until (a) the goodness thresholds fit and (b) the expected
	// number of bad supernodes is well below 1, so the supernode-level
	// fault rate sits inside Theorem 2's tolerance. Asymptotically both
	// hold at h = c k^2/(1+eps) (the paper's alpha-tuning); at finite
	// sizes the Chernoff constants must be paid explicitly.
	numSuper := float64(p.NumSupernodes())
	for ; p.H < 4096; p.H++ {
		if p.H < p.GoodSupernodeThreshold() {
			continue
		}
		if p.badSupernodeProb(pNode)*numSuper <= 0.25 {
			break
		}
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// badSupernodeProb estimates P(supernode not good) for node-failure
// probability pNode: a node is good when non-faulty and within the
// half-edge budget toward each of the 6d-1 relevant supernodes.
func (p Params) badSupernodeProb(pNode float64) float64 {
	goodRate := 1 - pNode
	if p.Q > 0 {
		perSuper := stats.BinomTail(p.H, math.Sqrt(p.Q), p.HalfEdgeThreshold()+1)
		goodRate *= math.Pow(1-perSuper, float64(p.Base.Degree()+1))
	}
	// Bad: fewer than the threshold good nodes among H.
	return 1 - stats.BinomTail(p.H, goodRate, p.GoodSupernodeThreshold())
}

// Graph is the host network A^d_n. Node v belongs to supernode v/H at
// slot v%H. Adjacency: same supernode (clique) or adjacent supernodes
// (complete join), where supernode adjacency is B^d_{n/k} adjacency.
type Graph struct {
	P    Params
	Base *core.Graph
}

// NewGraph validates the parameters and builds the host description.
func NewGraph(p Params) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base, err := core.NewGraph(p.Base)
	if err != nil {
		return nil, err
	}
	return &Graph{P: p, Base: base}, nil
}

// NumNodes returns the host node count.
func (g *Graph) NumNodes() int { return g.P.NumNodes() }

// Supernode returns the supernode id of node v.
func (g *Graph) Supernode(v int) int { return v / g.P.H }

// Slot returns the within-supernode slot of node v.
func (g *Graph) Slot(v int) int { return v % g.P.H }

// Adjacent reports host adjacency.
func (g *Graph) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	su, sv := g.Supernode(u), g.Supernode(v)
	if su == sv {
		return true
	}
	return g.Base.Adjacent(su, sv)
}

// FaultState carries the random faults of one trial: a node fault set and
// a lazily evaluated edge-fault oracle.
type FaultState struct {
	Nodes *fault.Set
	Edges *fault.Oracle
}

// NewFaultState draws node faults with probability pNode (using r) and
// configures the edge oracle with the graph's q and the given seed.
func (g *Graph) NewFaultState(seed uint64, pNode float64, r rng.Source) *FaultState {
	nodes := fault.NewSet(g.NumNodes())
	nodes.Bernoulli(r, pNode)
	return &FaultState{Nodes: nodes, Edges: fault.NewOracle(seed, g.P.Q)}
}

// goodNodes computes the good-node bitset (paper, Section 4).
func (g *Graph) goodNodes(fs *FaultState) *fault.Set {
	h := g.P.H
	thresh := g.P.HalfEdgeThreshold()
	good := fault.NewSet(g.NumNodes())
	nbuf := make([]int, 0, g.Base.Degree())
	numSuper := g.P.NumSupernodes()
	for s := 0; s < numSuper; s++ {
		nbuf = g.Base.Neighbors(s, nbuf[:0])
		for slot := 0; slot < h; slot++ {
			v := s*h + slot
			if fs.Nodes.Has(v) {
				continue
			}
			if g.P.Q == 0 {
				good.Add(v)
				continue
			}
			ok := true
			// Own supernode, then each adjacent supernode.
			if g.countFaultyHalfEdges(fs, v, s, thresh) > thresh {
				ok = false
			}
			for _, u := range nbuf {
				if !ok {
					break
				}
				if g.countFaultyHalfEdges(fs, v, u, thresh) > thresh {
					ok = false
				}
			}
			if ok {
				good.Add(v)
			}
		}
	}
	return good
}

// countFaultyHalfEdges counts v's faulty half-edges toward supernode u,
// early-exiting once the threshold is exceeded.
func (g *Graph) countFaultyHalfEdges(fs *FaultState, v, u, thresh int) int {
	h := g.P.H
	base := u * h
	count := 0
	for t := base; t < base+h; t++ {
		if t == v {
			continue
		}
		if fs.Edges.HalfEdgeFaulty(v, t) {
			count++
			if count > thresh {
				return count
			}
		}
	}
	return count
}

// Stats reports per-trial diagnostics from Embed.
type Stats struct {
	GoodNodes       int
	GoodSupernodes  int
	BadSupernodes   int
	SupernodeReport *core.PlaceReport
}

// Embed runs the full Theorem 1 pipeline and returns a verified embedding
// of the n-torus, or an error. A *core.UnhealthyError (wrapped) means the
// supernode-level fault pattern exceeded Theorem 2's tolerance; an
// ErrNoCandidate means the greedy placement died (cannot happen when the
// goodness accounting is right — it is surfaced separately to catch bugs).
func (g *Graph) Embed(fs *FaultState) (*embed.Embedding, *Stats, error) {
	p := g.P
	h := p.H
	st := &Stats{}
	good := g.goodNodes(fs)
	st.GoodNodes = good.Count()

	// Supernode-level faults for Theorem 2.
	numSuper := p.NumSupernodes()
	superFaults := fault.NewSet(numSuper)
	threshold := p.GoodSupernodeThreshold()
	for s := 0; s < numSuper; s++ {
		if good.CountRange(s*h, (s+1)*h) < threshold {
			superFaults.Add(s)
			st.BadSupernodes++
		}
	}
	st.GoodSupernodes = numSuper - st.BadSupernodes

	res, err := g.Base.ContainTorus(superFaults, core.ExtractOptions{})
	if err != nil {
		return nil, st, fmt.Errorf("supernode torus: %w", err)
	}
	st.SupernodeReport = res.Report

	// Greedy incremental placement f over the n-torus in row-major order.
	n := p.Side()
	d := p.Base.D
	guest, err := torus.NewUniform(torus.TorusKind, d, n)
	if err != nil {
		return nil, st, err
	}
	nB := p.Base.N()
	baseShape := grid.Uniform(d, nB)
	e := embed.New(guest)
	used := fault.NewSet(g.NumNodes()) // host nodes already images of f
	gc := make([]int, d)
	ic := make([]int, d)
	constraints := make([]int, 0, 2*d)
	for gi := 0; gi < guest.N(); gi++ {
		guest.Shape.Coord(gi, gc)
		for j, x := range gc {
			ic[j] = x / p.K
		}
		super := res.Embedding.Map[baseShape.Index(ic)]
		// Previously placed guest neighbors (row-major: -1 steps always,
		// +1 steps only across the wrap).
		constraints = constraints[:0]
		for j, x := range gc {
			prev := gc[j]
			gc[j] = grid.Sub(x, 1, n)
			if lower := guest.Shape.Index(gc); lower < gi {
				constraints = append(constraints, e.Map[lower])
			}
			gc[j] = grid.Add(x, 1, n)
			if upper := guest.Shape.Index(gc); upper < gi {
				constraints = append(constraints, e.Map[upper])
			}
			gc[j] = prev
		}
		chosen := -1
		for slot := 0; slot < h; slot++ {
			v := super*h + slot
			if !good.Has(v) || used.Has(v) {
				continue
			}
			ok := true
			for _, u := range constraints {
				if fs.Edges.EdgeFaulty(v, u) {
					ok = false
					break
				}
			}
			if ok {
				chosen = v
				break
			}
		}
		if chosen < 0 {
			return nil, st, fmt.Errorf("supernode: %w at guest node %d", ErrNoCandidate, gi)
		}
		used.Add(chosen)
		e.Map[gi] = chosen
	}

	if err := e.Verify(HostView{G: g, State: fs}); err != nil {
		return nil, st, err
	}
	return e, st, nil
}

// ErrNoCandidate reports that the greedy placement found a supernode with
// no usable good node — impossible when h respects the goodness
// thresholds, so its appearance indicates a bug or a mis-parameterized
// instance.
var ErrNoCandidate = fmt.Errorf("no fault-free candidate node in supernode")

// HostView adapts a faulty A^d_n to embed.Host.
type HostView struct {
	G     *Graph
	State *FaultState
}

// NumNodes implements embed.Host.
func (h HostView) NumNodes() int { return h.G.NumNodes() }

// Adjacent implements embed.Host.
func (h HostView) Adjacent(u, v int) bool { return h.G.Adjacent(u, v) }

// NodeFaulty implements embed.Host.
func (h HostView) NodeFaulty(u int) bool { return h.State.Nodes.Has(u) }

// EdgeFaulty implements embed.Host.
func (h HostView) EdgeFaulty(u, v int) bool { return h.State.Edges.EdgeFaulty(u, v) }
