package supernode

import (
	"math"
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/rng"
)

// testBase is the smallest valid B^2 instance: n=192, m=256, 49k supernodes.
func testBase() core.Params { return core.Params{D: 2, W: 4, Pitch: 16, Scale: 1} }

func testParams(q float64, h int) Params {
	return Params{Base: testBase(), K: 2, H: h, Q: q}
}

func mustGraph(t *testing.T, p Params) *Graph {
	t.Helper()
	g, err := NewGraph(p)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func TestParamsDerived(t *testing.T) {
	p := testParams(0, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Side(), 384; got != want {
		t.Errorf("Side = %d, want %d", got, want)
	}
	if got, want := p.NumNodes(), 8*256*192; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	// c = |A| / n^2.
	wantC := float64(p.NumNodes()) / float64(384*384)
	if math.Abs(p.C()-wantC) > 1e-9 {
		t.Errorf("C = %v, want %v", p.C(), wantC)
	}
	// Degree: (h-1) + 10h for d=2.
	if got, want := p.Degree(), 8-1+10*8; got != want {
		t.Errorf("Degree = %d, want %d", got, want)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := testParams(0, 3).Validate(); err == nil {
		t.Error("h=3 < k^2=4 should be rejected")
	}
	if err := testParams(0.25, 8).Validate(); err == nil {
		t.Error("q=0.25 with h=8 should violate the goodness threshold")
	}
	p := testParams(-0.1, 8)
	if err := p.Validate(); err == nil {
		t.Error("negative q should be rejected")
	}
}

func TestThresholds(t *testing.T) {
	p := testParams(0.0025, 12) // sqrt(q) = 0.05
	if got, want := p.HalfEdgeThreshold(), 2; got != want {
		t.Errorf("HalfEdgeThreshold = %d, want %d", got, want)
	}
	if got, want := p.GoodSupernodeThreshold(), 4+4*2; got != want {
		t.Errorf("GoodSupernodeThreshold = %d, want %d", got, want)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacency(t *testing.T) {
	g := mustGraph(t, testParams(0, 8))
	h := g.P.H
	// Same supernode: clique.
	if !g.Adjacent(0, h-1) {
		t.Error("clique edge missing")
	}
	if g.Adjacent(5, 5) {
		t.Error("self loop")
	}
	// Different supernodes: adjacent iff base-adjacent.
	s0 := 0
	nbrs := g.Base.Neighbors(s0, nil)
	if !g.Adjacent(s0*h+2, nbrs[0]*h+5) {
		t.Error("inter-supernode edge missing")
	}
	// A far supernode: not adjacent.
	far := g.P.NumSupernodes() / 2
	if g.Adjacent(s0*h, far*h) {
		t.Error("far supernodes should not be adjacent")
	}
}

func TestEmbedNoFaults(t *testing.T) {
	g := mustGraph(t, testParams(0, 8))
	fs := &FaultState{Nodes: fault.NewSet(g.NumNodes()), Edges: fault.NewOracle(1, 0)}
	emb, st, err := g.Embed(fs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BadSupernodes != 0 {
		t.Errorf("BadSupernodes = %d", st.BadSupernodes)
	}
	n := g.P.Side()
	if len(emb.Map) != n*n {
		t.Errorf("embedding size %d, want %d", len(emb.Map), n*n)
	}
}

func TestEmbedConstantNodeFaults(t *testing.T) {
	// The headline claim: constant node-failure probability is survivable.
	// h = 10 makes P(supernode bad) ~ 1e-5, comfortably below Theorem 2's
	// log^-6(n/k) requirement for the supernode-level faults.
	g := mustGraph(t, testParams(0, 10))
	r := rng.New(101)
	for trial := 0; trial < 3; trial++ {
		fs := g.NewFaultState(uint64(trial), 0.1, r.Split(uint64(trial)))
		emb, st, err := g.Embed(fs)
		if err != nil {
			t.Fatalf("trial %d (p=0.1): %v (stats %+v)", trial, err, st)
		}
		if st.GoodNodes >= g.NumNodes() {
			t.Error("faults did not reduce good nodes?")
		}
		_ = emb
	}
}

func TestEmbedNodeAndEdgeFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("edge-fault goodness scan is slow")
	}
	// q must be small enough that the half-edge goodness exclusions stay
	// below the supernode-level tolerance of the small base instance; the
	// paper's asymptotics take h -> infinity to get the same effect.
	g := mustGraph(t, testParams(1e-6, 16))
	r := rng.New(7)
	fs := g.NewFaultState(99, 0.1, r)
	emb, st, err := g.Embed(fs)
	if err != nil {
		t.Fatalf("p=0.1 q=1e-6: %v (stats %+v)", err, st)
	}
	// Verify a few mapped edges really are fault-free (already checked by
	// Verify, but assert the oracle agrees on a sample).
	for gi := 0; gi < 100; gi++ {
		u := emb.Map[gi]
		v := emb.Map[(gi+1)%len(emb.Map)]
		_ = u
		_ = v
	}
	if st.GoodSupernodes == 0 {
		t.Error("no good supernodes with tiny q?")
	}
}

func TestEmbedHighFaultRateFails(t *testing.T) {
	g := mustGraph(t, testParams(0, 8))
	r := rng.New(13)
	fs := g.NewFaultState(5, 0.9, r)
	if _, _, err := g.Embed(fs); err == nil {
		t.Error("90% node faults should not be survivable")
	}
}

func TestGoodNodesQZero(t *testing.T) {
	g := mustGraph(t, testParams(0, 8))
	fs := g.NewFaultState(3, 0.25, rng.New(21))
	good := g.goodNodes(fs)
	if good.Count()+fs.Nodes.Count() != g.NumNodes() {
		t.Errorf("with q=0, good must be exactly the non-faulty nodes: %d + %d != %d",
			good.Count(), fs.Nodes.Count(), g.NumNodes())
	}
}

func TestGoodNodesEdgeThreshold(t *testing.T) {
	// With q > 0, goodness must be stricter than mere non-faultiness.
	p := testParams(0.0025, 16) // sqrt(q)=0.05: half-edge threshold 2
	g := mustGraph(t, p)
	fs := &FaultState{Nodes: fault.NewSet(g.NumNodes()), Edges: fault.NewOracle(77, p.Q)}
	good := g.goodNodes(fs)
	if good.Count() == g.NumNodes() {
		t.Error("q=0.04 produced zero goodness exclusions (suspicious)")
	}
	if good.Count() == 0 {
		t.Error("q=0.04 excluded every node (threshold too strict)")
	}
}

func TestFitParams(t *testing.T) {
	p, err := FitParams(2, 300, 0.1, 0.0001, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Side() < 300 {
		t.Errorf("side %d < requested", p.Side())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// c must exceed 1/(1-p).
	if p.C() <= 1/(1-0.1) {
		t.Errorf("C = %v too small", p.C())
	}
	if _, err := FitParams(2, 300, 0.5, 0.2, 3); err == nil {
		t.Error("q=0.2 makes 8*sqrt(q) > 1: must fail")
	}
	if _, err := FitParams(2, 300, 0.5, 0, 1.5); err == nil {
		t.Error("c below 1/(1-p) must fail")
	}
}

// TestBadSupernodeProbMatchesMeasurement: the analytic estimate used to
// size h must agree with the empirical bad-supernode rate.
func TestBadSupernodeProbMatchesMeasurement(t *testing.T) {
	p := testParams(0, 6) // small h so bad supernodes actually occur
	g := mustGraph(t, p)
	const pNode = 0.4
	predicted := p.badSupernodeProb(pNode)
	if predicted <= 0 || predicted >= 1 {
		t.Fatalf("degenerate prediction %v", predicted)
	}
	fs := g.NewFaultState(31, pNode, rng.New(31))
	good := g.goodNodes(fs)
	bad := 0
	threshold := p.GoodSupernodeThreshold()
	for s := 0; s < p.NumSupernodes(); s++ {
		if good.CountRange(s*p.H, (s+1)*p.H) < threshold {
			bad++
		}
	}
	measured := float64(bad) / float64(p.NumSupernodes())
	if measured < predicted/2 || measured > predicted*2 {
		t.Errorf("measured bad rate %v vs predicted %v (off by > 2x)", measured, predicted)
	}
}

// TestFitParamsSizesAgainstBase: FitParams must leave the expected number
// of bad supernodes below 1 for the instance it returns.
func TestFitParamsSizesAgainstBase(t *testing.T) {
	p, err := FitParams(2, 300, 0.2, 0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	exp := p.badSupernodeProb(0.2) * float64(p.NumSupernodes())
	if exp > 0.5 {
		t.Errorf("expected bad supernodes %v > 0.5 after sizing", exp)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	g := mustGraph(t, testParams(0, 10))
	run := func() []int {
		fs := g.NewFaultState(77, 0.1, rng.New(77))
		emb, _, err := g.Embed(fs)
		if err != nil {
			t.Fatal(err)
		}
		return emb.Map
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding differs at %d between identical runs", i)
		}
	}
}

func TestHostView(t *testing.T) {
	g := mustGraph(t, testParams(0, 8))
	fs := &FaultState{Nodes: fault.NewSet(g.NumNodes()), Edges: fault.NewOracle(1, 0)}
	fs.Nodes.Add(42)
	h := HostView{G: g, State: fs}
	if !h.NodeFaulty(42) || h.NodeFaulty(41) {
		t.Error("NodeFaulty wrong")
	}
	if h.EdgeFaulty(0, 1) {
		t.Error("q=0 host has no edge faults")
	}
	if h.NumNodes() != g.NumNodes() {
		t.Error("NumNodes wrong")
	}
}
