package sweep

import (
	"fmt"
	"math"

	"ftnet/internal/core"
	"ftnet/internal/fault"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// Probes evaluates survival at arbitrary fault rates or fault counts with
// the same coupled trial streams across every probe, for threshold
// searches (bisection, doubling brackets).
//
// Rate coupling uses the canonical monotone construction F_t(p) =
// {i : U_i < p}: each trial t lazily materializes its stakes — the nodes
// with U_i below a cap — and a probe at rate p reads off the stakes with
// U_i < p. Caps only move along the fixed doubling grid base·2^j, so a
// trial's stakes below any probed rate are a pure function of (seed, t,
// p) no matter which probes ran before, in which order, or on which
// worker — speculative shard execution beyond an early-stop commit point
// cannot perturb later probes.
//
// Count coupling uses a per-trial uniform random injection order: F_t(k)
// is the first k nodes of the order, extended on demand; prefixes never
// reorder, so the same stability argument applies with no grid.
//
// A Probes value may be used by one probe evaluation at a time (the
// engine inside each Rate/Count call is parallel; the calls themselves
// are sequential).
type Probes struct {
	g      *core.Graph
	trials int
	seed   uint64
	cfg    Config
	base   float64 // rate cap grid: base * 2^j

	rate  []rateStakes
	count []countPicks
}

type rateStakes struct {
	pcg    *rng.PCG
	staked *fault.Set // nodes with a stake below cap
	u      []float64  // stake values, parallel to idx
	idx    []int32
	cap    float64
}

type countPicks struct {
	pcg    *rng.PCG
	picked *fault.Set
	order  []int32
}

// NewProbes builds a probe evaluator for g with the given per-probe trial
// budget. gridBase anchors the rate-cap doubling grid; pass the smallest
// rate the search may probe (e.g. the theorem probability for A4's
// bracket). cfg.Independent re-samples every probe from scratch instead
// (the ablation mode); cfg.TargetCI stops each probe's trial loop early.
func NewProbes(g *core.Graph, trials int, seed uint64, gridBase float64, cfg Config) (*Probes, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sweep: probes need a positive trial budget")
	}
	if gridBase <= 0 {
		return nil, fmt.Errorf("sweep: probe grid base must be positive")
	}
	return &Probes{g: g, trials: trials, seed: seed, cfg: cfg, base: gridBase}, nil
}

// engineOpts builds the per-probe parallel options.
func (ps *Probes) engineOpts() parallel.Options {
	return parallel.Options{
		Workers:    ps.cfg.Workers,
		ShardSize:  ps.cfg.ShardSize,
		TargetCI:   ps.cfg.TargetCI,
		MinTrials:  ps.cfg.MinTrials,
		NewScratch: func() any { return core.NewScratch(1) },
	}
}

func (ps *Probes) pipelineOpts(sc *core.Scratch) core.ExtractOptions {
	return core.ExtractOptions{Scratch: sc, Dense: ps.cfg.Dense}
}

// Rate measures survival at node-failure probability p over the coupled
// trial set.
func (ps *Probes) Rate(p float64) (stats.Result, error) {
	if p < 0 || p > 1 {
		return stats.Result{}, fmt.Errorf("sweep: probe rate %g out of range", p)
	}
	g := ps.g
	if ps.cfg.Independent {
		rep, err := parallel.Run(ps.trials, rng.Hash64(ps.seed, math.Float64bits(p)), ps.engineOpts(),
			func(t int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
				sc := scratch.(*core.Scratch)
				faults := sc.Faults(g.NumNodes())
				faults.Bernoulli(stream, p)
				_, err := g.ContainTorus(faults, ps.pipelineOpts(sc))
				return classify(err)
			})
		return rep.Result, err
	}
	if ps.rate == nil {
		ps.rate = make([]rateStakes, ps.trials)
	}
	rep, err := parallel.Run(ps.trials, ps.seed, ps.engineOpts(),
		func(t int, _ *rng.PCG, scratch any) (stats.Outcome, error) {
			sc := scratch.(*core.Scratch)
			rs := &ps.rate[t]
			if rs.pcg == nil {
				// One private stream per trial, persisting across probes;
				// keyed off the engine seed but offset so it never collides
				// with the engine's own (seed, t) streams.
				rs.pcg = rng.NewPCG(ps.seed, rng.Hash64(uint64(t), 0x9be5))
				rs.staked = fault.NewSet(g.NumNodes())
				rs.cap = 0
			}
			if err := rs.extendTo(ps.base, p); err != nil {
				return stats.Failure, err
			}
			faults := sc.Faults(g.NumNodes())
			for i, u := range rs.u {
				if u < p {
					faults.Add(int(rs.idx[i]))
				}
			}
			_, err := g.ContainTorus(faults, ps.pipelineOpts(sc))
			return classify(err)
		})
	return rep.Result, err
}

// extendTo raises the stake cap to the smallest grid point >= p, stepping
// grid point to grid point so the stakes below any rate are independent
// of the probe sequence.
func (rs *rateStakes) extendTo(base, p float64) error {
	for rs.cap < p {
		next := base
		for next <= rs.cap {
			next *= 2
		}
		if next > 1 {
			next = 1
		}
		// Healthy nodes join (cap, next] with the conditional probability;
		// each new stake then draws its position within the slice. Two
		// passes (collect, then place) keep the stream usage a pure
		// function of the cap sequence.
		added, err := rs.staked.Extend(rs.pcg, rs.cap, next, nil)
		if err != nil {
			return err
		}
		for _, i := range added {
			rs.idx = append(rs.idx, int32(i))
			rs.u = append(rs.u, rs.cap+(next-rs.cap)*rs.pcg.Float64())
		}
		rs.cap = next
	}
	return nil
}

// Count measures survival with exactly k uniformly random faults over the
// coupled trial set.
func (ps *Probes) Count(k int) (stats.Result, error) {
	g := ps.g
	if k < 0 || k > g.NumNodes() {
		return stats.Result{}, fmt.Errorf("sweep: probe count %d out of range", k)
	}
	if ps.cfg.Independent {
		rep, err := parallel.Run(ps.trials, rng.Hash64(ps.seed, uint64(k)), ps.engineOpts(),
			func(t int, stream *rng.PCG, scratch any) (stats.Outcome, error) {
				sc := scratch.(*core.Scratch)
				faults := sc.Faults(g.NumNodes())
				if err := faults.ExactRandom(stream, k); err != nil {
					return stats.Failure, err
				}
				_, err := g.ContainTorus(faults, ps.pipelineOpts(sc))
				return classify(err)
			})
		return rep.Result, err
	}
	if ps.count == nil {
		ps.count = make([]countPicks, ps.trials)
	}
	rep, err := parallel.Run(ps.trials, ps.seed, ps.engineOpts(),
		func(t int, _ *rng.PCG, scratch any) (stats.Outcome, error) {
			sc := scratch.(*core.Scratch)
			cp := &ps.count[t]
			if cp.pcg == nil {
				cp.pcg = rng.NewPCG(ps.seed, rng.Hash64(uint64(t), 0x51ab))
				cp.picked = fault.NewSet(g.NumNodes())
			}
			for len(cp.order) < k {
				i := cp.pcg.Intn(g.NumNodes())
				if !cp.picked.Has(i) {
					cp.picked.Add(i)
					cp.order = append(cp.order, int32(i))
				}
			}
			faults := sc.Faults(g.NumNodes())
			for _, i := range cp.order[:k] {
				faults.Add(int(i))
			}
			_, err := g.ContainTorus(faults, ps.pipelineOpts(sc))
			return classify(err)
		})
	return rep.Result, err
}
