// Package sweep evaluates whole survival curves — survival probability
// vs fault rate — with coupled Monte-Carlo trials instead of one
// independent run per point.
//
// A single trial walks an entire ascending rate ladder p_1 < ... < p_k
// under nested common-random-numbers coupling: fault.Set.Extend grows
// F(p_1) ⊆ F(p_2) ⊆ ... ⊆ F(p_k) with exact Bernoulli marginals, and
// core.SweepTrial re-enters the Theorem 2 pipeline at each rung with the
// previous rung's copy-on-write bands, row vectors and certification
// intact, paying only for the columns whose band values changed. The
// ladder therefore costs little more than its most expensive rung, where
// independent per-rate evaluation pays every rung in full.
//
// Execution rides on internal/parallel's shard-ordered deterministic
// commit (RunLadder): per-rung Wilson early stopping and the aggregated
// curve are bit-identical for every worker count, and rungs whose
// interval is already tight are skipped by later trials — safe because
// every rung's evaluation is bit-exact regardless of which earlier rungs
// ran (the sweep equivalence tests in internal/core pin this).
//
// The Probes type extends the same coupling to threshold searches (the
// 50%-crossing bisection of experiment A4, the fault-count doubling of
// E10): every probe re-evaluates the same per-trial coupled fault
// universes, so the measured rate is monotone-stable across probes
// instead of resampling noise into every bisection decision.
package sweep

import (
	"errors"
	"fmt"

	"ftnet/internal/core"
	"ftnet/internal/parallel"
	"ftnet/internal/rng"
	"ftnet/internal/stats"
)

// Config tunes a sweep run.
type Config struct {
	// Workers bounds the trial worker pool; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is passed through to the parallel engine.
	ShardSize int
	// TargetCI, if positive, stops each rung once its 95% Wilson interval
	// is narrower than this width.
	TargetCI float64
	// MinTrials is the minimum committed trial count before a rung may
	// stop early.
	MinTrials int
	// Independent disables the nested coupling: every rung of every trial
	// draws a fresh Bernoulli fault set and runs the pipeline cold. This
	// is the ablation baseline the coupled engine is benchmarked against.
	Independent bool
	// Dense forces the legacy whole-host pipeline in every rung.
	Dense bool
}

// Rung is one point of a measured survival curve.
type Rung struct {
	Rate float64
	stats.Result
	EarlyStopped bool
}

// Curve is a measured survival curve.
type Curve struct {
	Rungs     []Rung
	Requested int
	Workers   int
}

// classify maps pipeline errors to Monte-Carlo outcomes: unhealthy fault
// patterns are survival failures; anything else is a bug.
func classify(err error) (stats.Outcome, error) {
	if err == nil {
		return stats.Success, nil
	}
	var ue *core.UnhealthyError
	if errors.As(err, &ue) {
		return stats.Failure, nil
	}
	return stats.Failure, err
}

// curveScratch is the per-worker state bundle for curve trials.
type curveScratch struct {
	sc    *core.Scratch
	st    *core.SweepTrial
	added []int
}

// SurvivalCurve measures survival of g's Theorem 2 pipeline at every rate
// of the ascending ladder, sharing trials across all rungs. With
// cfg.Independent it instead evaluates each rung on its own fresh sample
// (same engine, same streams), which reproduces the legacy one-cell-per-
// rate behavior for ablation.
func SurvivalCurve(g *core.Graph, rates []float64, trials int, seed uint64, cfg Config) (Curve, error) {
	if len(rates) == 0 {
		return Curve{}, fmt.Errorf("sweep: empty rate ladder")
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1] {
			return Curve{}, fmt.Errorf("sweep: rate ladder not ascending at rung %d (%g < %g)", i, rates[i], rates[i-1])
		}
	}
	opts := parallel.Options{
		Workers:   cfg.Workers,
		ShardSize: cfg.ShardSize,
		TargetCI:  cfg.TargetCI,
		MinTrials: cfg.MinTrials,
		NewScratch: func() any {
			sc := core.NewScratch(1)
			return &curveScratch{sc: sc, st: g.NewSweepTrial(sc, core.ExtractOptions{Dense: cfg.Dense})}
		},
	}
	var fn parallel.LadderTrial
	if cfg.Independent {
		fn = func(t int, stream *rng.PCG, scratch any, stopped []bool, out []stats.Outcome) error {
			cs := scratch.(*curveScratch)
			for r, rate := range rates {
				faults := cs.sc.Faults(g.NumNodes())
				faults.Bernoulli(stream, rate)
				if stopped[r] {
					continue
				}
				_, err := g.ContainTorus(faults, core.ExtractOptions{Scratch: cs.sc, Dense: cfg.Dense})
				if out[r], err = classify(err); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		fn = func(t int, stream *rng.PCG, scratch any, stopped []bool, out []stats.Outcome) error {
			cs := scratch.(*curveScratch)
			cs.st.Reset()
			faults := cs.sc.Faults(g.NumNodes())
			prev := 0.0
			for r, rate := range rates {
				var err error
				// Sampling always advances, evaluated rung or not, so every
				// rung's fault set — and hence its outcome — is independent
				// of which rungs the engine skipped.
				cs.added, err = faults.Extend(stream, prev, rate, cs.added[:0])
				if err != nil {
					return err
				}
				cs.st.NoteFaults(cs.added)
				prev = rate
				if stopped[r] {
					continue
				}
				_, err = cs.st.Eval(faults)
				if out[r], err = classify(err); err != nil {
					return err
				}
			}
			return nil
		}
	}
	rep, err := parallel.RunLadder(trials, len(rates), seed, opts, fn)
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Requested: rep.Requested, Workers: rep.Workers, Rungs: make([]Rung, len(rates))}
	for r, rate := range rates {
		curve.Rungs[r] = Rung{Rate: rate, Result: rep.Rungs[r].Result, EarlyStopped: rep.Rungs[r].EarlyStopped}
	}
	return curve, nil
}
