package sweep

import (
	"math"
	"testing"

	"ftnet/internal/core"
)

func testGraph(t *testing.T) *core.Graph {
	t.Helper()
	g, err := core.NewGraph(core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}) // n=192
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testRates(g *core.Graph) []float64 {
	pThm := g.P.TheoremFailureProb()
	mults := []float64{0.5, 1, 5, 20, 60, 150}
	out := make([]float64, len(mults))
	for i, m := range mults {
		out[i] = pThm * m
	}
	return out
}

// TestParallelDeterminismSweepCurve pins the engine's headline contract
// (the name keeps it inside CI's -race determinism sweep): the full
// coupled curve — per-rung counts, trial totals and stopping points —
// must be bit-identical for 1, 4 and 16 workers.
func TestParallelDeterminismSweepCurve(t *testing.T) {
	g := testGraph(t)
	rates := testRates(g)
	for _, cfg := range []Config{
		{},
		{TargetCI: 0.3},
	} {
		var ref Curve
		for i, workers := range []int{1, 4, 16} {
			c := cfg
			c.Workers = workers
			c.ShardSize = 1 // enough shards for 16 real workers at small trial counts
			curve, err := SurvivalCurve(g, rates, 48, 11, c)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = curve
				continue
			}
			for r := range curve.Rungs {
				if curve.Rungs[r] != ref.Rungs[r] {
					t.Fatalf("cfg=%+v workers=%d rung=%d: %+v, want %+v",
						cfg, workers, r, curve.Rungs[r], ref.Rungs[r])
				}
			}
		}
	}
}

// TestCurveMonotoneAndCalibrated sanity-checks the coupled estimator:
// under nested coupling each trial's survival is evaluated on growing
// fault sets, the measured curve must start near 1 at half the theorem
// probability and collapse by 150x, and the coupled and independent
// estimators must agree within joint confidence slack.
func TestCurveMonotoneAndCalibrated(t *testing.T) {
	g := testGraph(t)
	rates := testRates(g)
	coupled, err := SurvivalCurve(g, rates, 120, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := coupled.Rungs[0].Rate; got != rates[0] {
		t.Fatalf("rung 0 rate %g, want %g", got, rates[0])
	}
	if coupled.Rungs[0].Result.Rate < 0.95 {
		t.Fatalf("survival %.3f at 0.5x theorem probability", coupled.Rungs[0].Result.Rate)
	}
	last := coupled.Rungs[len(coupled.Rungs)-1].Result
	if last.Rate > 0.2 {
		t.Fatalf("survival %.3f at 150x theorem probability — no collapse", last.Rate)
	}
	independent, err := SurvivalCurve(g, rates, 120, 5, Config{Independent: true})
	if err != nil {
		t.Fatal(err)
	}
	for r := range rates {
		c, ind := coupled.Rungs[r].Result, independent.Rungs[r].Result
		if c.Lo > ind.Hi+1e-9 || ind.Lo > c.Hi+1e-9 {
			t.Errorf("rung %d: coupled %s vs independent %s do not overlap", r, c, ind)
		}
	}
}

// TestProbesRateStableAcrossCallOrder pins the grid-aligned stake
// coupling: probing the same rate before or after other probes — or
// twice — must return bit-identical results.
func TestProbesRateStableAcrossCallOrder(t *testing.T) {
	g := testGraph(t)
	pThm := g.P.TheoremFailureProb()
	mk := func() *Probes {
		ps, err := NewProbes(g, 24, 9, pThm, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	probe := func(ps *Probes, p float64) (succ, trials int) {
		res, err := ps.Rate(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Successes, res.Trials
	}
	psA := mk()
	wantS, wantT := probe(psA, 30*pThm)
	psB := mk()
	probe(psB, 5*pThm)
	probe(psB, 120*pThm)
	gotS, gotT := probe(psB, 30*pThm)
	if gotS != wantS || gotT != wantT {
		t.Fatalf("probe at 30x depends on probe history: %d/%d vs %d/%d", gotS, gotT, wantS, wantT)
	}
	// Monotonicity of the coupled fault sets: higher rate can only lose
	// survivors on the same trial set.
	loS, _ := probe(psA, 10*pThm)
	hiS, _ := probe(psA, 200*pThm)
	if hiS > loS {
		t.Fatalf("coupled survival increased with rate: %d at 10x vs %d at 200x", loS, hiS)
	}
}

// TestProbesCountStable mirrors the rate test for fault-count probes.
func TestProbesCountStable(t *testing.T) {
	g := testGraph(t)
	ps, err := NewProbes(g, 16, 13, g.P.TheoremFailureProb(), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := ps.Count(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Count(64); err != nil {
		t.Fatal(err)
	}
	again, err := ps.Count(8)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("count probe depends on history: %+v vs %+v", first, again)
	}
}

// TestCurveRejectsBadLadder pins input validation.
func TestCurveRejectsBadLadder(t *testing.T) {
	g := testGraph(t)
	if _, err := SurvivalCurve(g, nil, 10, 1, Config{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := SurvivalCurve(g, []float64{1e-3, 1e-4}, 10, 1, Config{}); err == nil {
		t.Error("descending ladder accepted")
	}
	if _, err := NewProbes(g, 0, 1, 1e-6, Config{}); err == nil {
		t.Error("zero trial budget accepted")
	}
	if _, err := NewProbes(g, 10, 1, 0, Config{}); err == nil {
		t.Error("zero grid base accepted")
	}
	ps, _ := NewProbes(g, 4, 1, 1e-6, Config{})
	if _, err := ps.Rate(1.5); err == nil {
		t.Error("out-of-range rate accepted")
	}
	if _, err := ps.Count(math.MaxInt32); err == nil {
		t.Error("out-of-range count accepted")
	}
}
