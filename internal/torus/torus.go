// Package torus implements d-dimensional torus and mesh graphs as direct
// products of cycles C_n and paths L_n (paper, Section 2), with
// allocation-light adjacency suitable for million-node instances.
//
// A Torus is the guest network the paper's constructions must contain after
// faults; it also serves as the substrate the host networks B, A and D are
// built from by edge augmentation.
package torus

import (
	"fmt"

	"ftnet/internal/grid"
)

// Kind distinguishes the cyclic product (torus) from the path product (mesh).
type Kind int

const (
	// TorusKind is the direct product of cycles C_{n1} x ... x C_{nd}.
	TorusKind Kind = iota
	// MeshKind is the direct product of paths L_{n1} x ... x L_{nd}.
	MeshKind
)

func (k Kind) String() string {
	if k == MeshKind {
		return "mesh"
	}
	return "torus"
}

// Graph is a d-dimensional torus or mesh.
type Graph struct {
	Shape grid.Shape
	Kind  Kind
}

// New returns the torus or mesh with the given side lengths.
func New(kind Kind, shape grid.Shape) (*Graph, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if kind == TorusKind {
		for i, v := range shape {
			if v < 3 {
				return nil, fmt.Errorf("torus: side %d is %d; cycles need length >= 3 for a simple graph", i, v)
			}
		}
	}
	return &Graph{Shape: shape.Clone(), Kind: kind}, nil
}

// NewUniform returns the d-dimensional n x ... x n torus or mesh.
func NewUniform(kind Kind, d, n int) (*Graph, error) {
	return New(kind, grid.Uniform(d, n))
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.Shape.Size() }

// NumNodes returns the number of nodes; an alias of N satisfying the
// implicit-graph interfaces shared with the host networks.
func (g *Graph) NumNodes() int { return g.N() }

// Dims returns the dimensionality d.
func (g *Graph) Dims() int { return len(g.Shape) }

// Degree returns the maximum degree: 2d for the torus; 2d for interior mesh
// nodes (corner/edge nodes have fewer neighbors).
func (g *Graph) Degree() int { return 2 * len(g.Shape) }

// Neighbors appends the neighbor indices of node idx to buf and returns it.
func (g *Graph) Neighbors(idx int, buf []int) []int {
	if g.Kind == TorusKind {
		return g.Shape.TorusNeighbors(idx, buf)
	}
	return g.Shape.MeshNeighbors(idx, buf)
}

// Adjacent reports whether nodes a and b are adjacent.
func (g *Graph) Adjacent(a, b int) bool {
	if a == b {
		return false
	}
	ca := g.Shape.Coord(a, nil)
	cb := g.Shape.Coord(b, nil)
	diffDim := -1
	for i := range g.Shape {
		if ca[i] != cb[i] {
			if diffDim >= 0 {
				return false
			}
			diffDim = i
		}
	}
	if diffDim < 0 {
		return false
	}
	d := ca[diffDim] - cb[diffDim]
	if d == 1 || d == -1 {
		return true
	}
	if g.Kind == TorusKind {
		n := g.Shape[diffDim]
		return d == n-1 || d == -(n-1)
	}
	return false
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for i, n := range g.Shape {
		per := n // cycle: n edges along this dimension per line
		if g.Kind == MeshKind {
			per = n - 1
		}
		others := 1
		for j, m := range g.Shape {
			if j != i {
				others *= m
			}
		}
		total += per * others
	}
	return total
}

// EachEdge calls fn(u, v) once per edge with u < v... ordering follows the
// canonical orientation (+1 step per dimension); for torus wrap edges the
// larger coordinate connects back to 0, so u > v can occur. fn must not
// retain the coordinate buffer.
func (g *Graph) EachEdge(fn func(u, v int)) {
	n := g.N()
	coord := make([]int, g.Dims())
	for u := 0; u < n; u++ {
		g.Shape.Coord(u, coord)
		for i := range g.Shape {
			orig := coord[i]
			if orig+1 < g.Shape[i] {
				coord[i] = orig + 1
				fn(u, g.Shape.Index(coord))
			} else if g.Kind == TorusKind && g.Shape[i] >= 3 {
				coord[i] = 0
				fn(u, g.Shape.Index(coord))
			}
			coord[i] = orig
		}
	}
}

// Column returns the flat indices of column z of a d-dimensional torus
// viewed as C_{n1} x T' (paper Section 2): the nodes (i, z) for all i in
// the first dimension. z indexes the (d-1)-dimensional column space.
func (g *Graph) Column(z int) []int {
	d := g.Dims()
	colShape := grid.Shape(g.Shape[1:])
	zCoord := colShape.Coord(z, make([]int, d-1))
	out := make([]int, g.Shape[0])
	full := make([]int, d)
	copy(full[1:], zCoord)
	for i := 0; i < g.Shape[0]; i++ {
		full[0] = i
		out[i] = g.Shape.Index(full)
	}
	return out
}

// NumColumns returns the number of columns (size of the column space).
func (g *Graph) NumColumns() int {
	return grid.Shape(g.Shape[1:]).Size()
}

// Row returns the flat indices of row i: the nodes (i, z) for all z.
func (g *Graph) Row(i int) []int {
	cols := g.NumColumns()
	out := make([]int, cols)
	d := g.Dims()
	colShape := grid.Shape(g.Shape[1:])
	zCoord := make([]int, d-1)
	full := make([]int, d)
	full[0] = i
	for z := 0; z < cols; z++ {
		colShape.Coord(z, zCoord)
		copy(full[1:], zCoord)
		out[z] = g.Shape.Index(full)
	}
	return out
}
