package torus

import (
	"testing"

	"ftnet/internal/grid"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(TorusKind, grid.Shape{2, 5}); err == nil {
		t.Error("torus side 2 should be rejected")
	}
	if _, err := New(MeshKind, grid.Shape{2, 5}); err != nil {
		t.Errorf("mesh side 2 should be fine: %v", err)
	}
	if _, err := New(TorusKind, grid.Shape{}); err == nil {
		t.Error("empty shape should be rejected")
	}
}

func TestTorusDegreeUniform(t *testing.T) {
	g, err := NewUniform(TorusKind, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if nbrs := g.Neighbors(u, nil); len(nbrs) != 4 {
			t.Fatalf("node %d has %d neighbors", u, len(nbrs))
		}
	}
}

func TestNumEdges(t *testing.T) {
	torus5, _ := NewUniform(TorusKind, 2, 5)
	if got, want := torus5.NumEdges(), 50; got != want { // 2 * 5 * 5
		t.Errorf("torus 5x5 edges = %d, want %d", got, want)
	}
	mesh5, _ := NewUniform(MeshKind, 2, 5)
	if got, want := mesh5.NumEdges(), 40; got != want { // 2 * 4 * 5
		t.Errorf("mesh 5x5 edges = %d, want %d", got, want)
	}
}

func TestEachEdgeCountsMatch(t *testing.T) {
	for _, kind := range []Kind{TorusKind, MeshKind} {
		g, _ := New(kind, grid.Shape{4, 5, 3})
		count := 0
		g.EachEdge(func(u, v int) {
			count++
			if !g.Adjacent(u, v) {
				t.Fatalf("%v: EachEdge emitted non-adjacent pair (%d,%d)", kind, u, v)
			}
		})
		if count != g.NumEdges() {
			t.Errorf("%v: EachEdge emitted %d, NumEdges says %d", kind, count, g.NumEdges())
		}
	}
}

func TestAdjacentMatchesNeighbors(t *testing.T) {
	for _, kind := range []Kind{TorusKind, MeshKind} {
		g, _ := New(kind, grid.Shape{4, 6})
		for u := 0; u < g.N(); u++ {
			nbrs := map[int]bool{}
			for _, v := range g.Neighbors(u, nil) {
				nbrs[v] = true
			}
			for v := 0; v < g.N(); v++ {
				if got := g.Adjacent(u, v); got != nbrs[v] {
					t.Fatalf("%v: Adjacent(%d,%d) = %v, neighbors say %v", kind, u, v, got, nbrs[v])
				}
			}
		}
	}
}

func TestMeshWrapNotAdjacent(t *testing.T) {
	g, _ := NewUniform(MeshKind, 1, 6)
	if g.Adjacent(0, 5) {
		t.Error("mesh endpoints should not wrap")
	}
	tg, _ := NewUniform(TorusKind, 1, 6)
	if !tg.Adjacent(0, 5) {
		t.Error("torus endpoints should wrap")
	}
}

func TestRowsAndColumns(t *testing.T) {
	g, _ := NewUniform(TorusKind, 2, 4)
	col := g.Column(2)
	if len(col) != 4 {
		t.Fatalf("column length %d", len(col))
	}
	for i, idx := range col {
		c := g.Shape.Coord(idx, nil)
		if c[0] != i || c[1] != 2 {
			t.Errorf("Column(2)[%d] = %v", i, c)
		}
	}
	row := g.Row(3)
	if len(row) != 4 {
		t.Fatalf("row length %d", len(row))
	}
	for z, idx := range row {
		c := g.Shape.Coord(idx, nil)
		if c[0] != 3 || c[1] != z {
			t.Errorf("Row(3)[%d] = %v", z, c)
		}
	}
	if g.NumColumns() != 4 {
		t.Errorf("NumColumns = %d", g.NumColumns())
	}
}

func TestColumnsIn3D(t *testing.T) {
	g, _ := New(TorusKind, grid.Shape{3, 4, 5})
	if g.NumColumns() != 20 {
		t.Fatalf("NumColumns = %d, want 20", g.NumColumns())
	}
	col := g.Column(7)
	if len(col) != 3 {
		t.Fatalf("column length %d, want 3", len(col))
	}
	// Consecutive column entries differ only in coordinate 0.
	for i := 1; i < len(col); i++ {
		a := g.Shape.Coord(col[i-1], nil)
		b := g.Shape.Coord(col[i], nil)
		if a[1] != b[1] || a[2] != b[2] || b[0] != a[0]+1 {
			t.Errorf("column not aligned: %v -> %v", a, b)
		}
	}
}

func TestKindString(t *testing.T) {
	if TorusKind.String() != "torus" || MeshKind.String() != "mesh" {
		t.Error("Kind strings wrong")
	}
}
