// Package validate holds the numeric input validators shared by every
// boundary that accepts untrusted numbers — the ftnetd daemon's Config,
// the CLI's flag parsing, and the churn process rates. Float values
// parsed off a command line or a config file can carry NaN, infinities,
// or negative values; each of these would otherwise flow silently into
// the Gillespie rate machinery or the batching policy and produce
// garbage instead of an error.
package validate

import (
	"math"

	"ftnet/internal/fterr"
)

// Rate validates a rate-like value: finite and >= 0.
func Rate(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fterr.New(fterr.Invalid, "validate", "%s must be finite, got %v", name, v)
	}
	if v < 0 {
		return fterr.New(fterr.Invalid, "validate", "%s must be >= 0, got %v", name, v)
	}
	return nil
}

// Positive validates a strictly positive finite value (e.g. a time
// horizon or an eps bound).
func Positive(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fterr.New(fterr.Invalid, "validate", "%s must be finite, got %v", name, v)
	}
	if v <= 0 {
		return fterr.New(fterr.Invalid, "validate", "%s must be > 0, got %v", name, v)
	}
	return nil
}

// Min validates an integer lower bound (workers >= 0, trials >= 1,
// burst size >= 1, ...).
func Min(name string, v, min int) error {
	if v < min {
		return fterr.New(fterr.Invalid, "validate", "%s must be >= %d, got %d", name, min, v)
	}
	return nil
}
