// Package validate holds the numeric input validators shared by every
// boundary that accepts untrusted numbers — the ftnetd daemon's Config,
// the CLI's flag parsing, and the churn process rates. Float values
// parsed off a command line or a config file can carry NaN, infinities,
// or negative values; each of these would otherwise flow silently into
// the Gillespie rate machinery or the batching policy and produce
// garbage instead of an error.
package validate

import (
	"math"

	"ftnet/internal/fterr"
)

// Rate validates a rate-like value: finite and >= 0.
func Rate(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fterr.New(fterr.Invalid, "validate", "%s must be finite, got %v", name, v)
	}
	if v < 0 {
		return fterr.New(fterr.Invalid, "validate", "%s must be >= 0, got %v", name, v)
	}
	return nil
}

// Positive validates a strictly positive finite value (e.g. a time
// horizon or an eps bound).
func Positive(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fterr.New(fterr.Invalid, "validate", "%s must be finite, got %v", name, v)
	}
	if v <= 0 {
		return fterr.New(fterr.Invalid, "validate", "%s must be > 0, got %v", name, v)
	}
	return nil
}

// Min validates an integer lower bound (workers >= 0, trials >= 1,
// burst size >= 1, ...).
func Min(name string, v, min int) error {
	if v < min {
		return fterr.New(fterr.Invalid, "validate", "%s must be >= %d, got %d", name, min, v)
	}
	return nil
}

// Edge validates an untrusted host-edge endpoint pair against a host
// with n nodes and the given adjacency predicate: both endpoints in
// range, no self-loop, and the pair actually connected in the host.
// Every rejection is a terminal fterr.Invalid — exactly the class the
// daemon's all-or-nothing batch semantics need at the wire boundary.
// Pass adjacent == nil to skip the adjacency check (range/self-loop
// only), for boundaries that cannot reach the host graph.
func Edge(name string, u, v, n int, adjacent func(u, v int) bool) error {
	if u < 0 || u >= n {
		return fterr.New(fterr.Invalid, "validate", "%s endpoint %d out of range [0, %d)", name, u, n)
	}
	if v < 0 || v >= n {
		return fterr.New(fterr.Invalid, "validate", "%s endpoint %d out of range [0, %d)", name, v, n)
	}
	if u == v {
		return fterr.New(fterr.Invalid, "validate", "%s is a self-loop on node %d", name, u)
	}
	if adjacent != nil && !adjacent(u, v) {
		return fterr.New(fterr.Invalid, "validate", "%s {%d, %d} is not a host edge (endpoints not adjacent)", name, u, v)
	}
	return nil
}
