package validate

import (
	"math"
	"testing"
)

func TestHelpers(t *testing.T) {
	if err := Rate("x", 0); err != nil {
		t.Error(err)
	}
	for _, v := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := Rate("x", v); err == nil {
			t.Errorf("Rate accepted %v", v)
		}
	}
	if err := Positive("x", 1); err != nil {
		t.Error(err)
	}
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := Positive("x", v); err == nil {
			t.Errorf("Positive accepted %v", v)
		}
	}
	if err := Min("x", 0, 0); err != nil {
		t.Error(err)
	}
	if err := Min("x", -1, 0); err == nil {
		t.Error("Min accepted -1 >= 0")
	}
}
