// Package viz renders ASCII pictures of faulty B^2_n instances: the bands
// winding around fault clusters (the paper's Figure 1) and the row of the
// extracted torus jumping diagonally over bands (Figure 2). Only d = 2 is
// renderable.
package viz

import (
	"fmt"
	"strings"

	"ftnet/internal/bands"
	"ftnet/internal/core"
	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
)

// Legend explains the glyphs used by the renderers.
const Legend = "legend: '.' unmasked  '#' band  'X' fault (masked)  '!' fault unmasked (bug)  '*' extracted row"

// Bands renders a window of the host: rows rowLo..rowLo+height-1 (cyclic),
// columns colLo..colLo+width-1 (cyclic). Row indices grow downward.
// Reproduces Figure 1.
func Bands(g *core.Graph, bs *bands.Set, faults *fault.Set, rowLo, colLo, height, width int) (string, error) {
	if g.P.D != 2 {
		return "", fmt.Errorf("viz: rendering requires d=2, got d=%d", g.P.D)
	}
	m := g.P.M()
	n := g.P.N()
	var b strings.Builder
	fmt.Fprintf(&b, "B^2 window rows %d..%d, columns %d..%d (m=%d, n=%d, b=%d)\n",
		rowLo, rowLo+height-1, colLo, colLo+width-1, m, n, g.P.W)
	for dr := 0; dr < height; dr++ {
		row := grid.Add(rowLo, dr, m)
		fmt.Fprintf(&b, "%5d ", row)
		for dc := 0; dc < width; dc++ {
			col := grid.Add(colLo, dc, n)
			b.WriteByte(glyph(g, bs, faults, row, col))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func glyph(g *core.Graph, bs *bands.Set, faults *fault.Set, row, col int) byte {
	masked := bs.MaskedBy(col, row) >= 0
	faulty := faults.Has(g.NodeIndex(row, col))
	switch {
	case faulty && masked:
		return 'X'
	case faulty:
		return '!'
	case masked:
		return '#'
	default:
		return '.'
	}
}

// RowTrace renders the same window with the host image of one guest row
// overlaid, showing the diagonal jumps over bands. Reproduces Figure 2.
func RowTrace(g *core.Graph, bs *bands.Set, faults *fault.Set, emb *embed.Embedding, guestRow, colLo, width, pad int) (string, error) {
	if g.P.D != 2 {
		return "", fmt.Errorf("viz: rendering requires d=2, got d=%d", g.P.D)
	}
	m := g.P.M()
	n := g.P.N()
	numCols := g.NumCols
	// Host rows visited by the guest row across the window; frame them
	// with the minimal covering cyclic interval plus padding.
	hostRows := make(map[int]int, width) // column -> host row
	visited := make([]int, 0, width)
	for dc := 0; dc < width; dc++ {
		col := grid.Add(colLo, dc, n)
		host := emb.Map[guestRow*numCols+col]
		r := host / numCols
		hostRows[col] = r
		visited = append(visited, r)
	}
	lo, extent := grid.CyclicCover(visited, m)
	start := grid.Sub(lo, pad, m)
	height := extent + 2*pad
	if height > m {
		height = m
	}
	var b strings.Builder
	fmt.Fprintf(&b, "guest row %d across columns %d..%d\n", guestRow, colLo, colLo+width-1)
	for dr := 0; dr < height; dr++ {
		row := grid.Add(start, dr, m)
		fmt.Fprintf(&b, "%5d ", row)
		for dc := 0; dc < width; dc++ {
			col := grid.Add(colLo, dc, n)
			if hostRows[col] == row {
				b.WriteByte('*')
				continue
			}
			b.WriteByte(glyph(g, bs, faults, row, col))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// FaultWindow locates a window around the first fault, or the origin for
// fault-free instances: a convenience for the figure experiments.
func FaultWindow(g *core.Graph, faults *fault.Set, height, width int) (rowLo, colLo int) {
	first := -1
	faults.ForEach(func(idx int) {
		if first < 0 {
			first = idx
		}
	})
	if first < 0 {
		return 0, 0
	}
	i, z := g.NodeOf(first)
	return grid.Sub(i, height/3, g.P.M()), grid.Sub(z, width/3, g.P.N())
}
