package viz

import (
	"strings"
	"testing"

	"ftnet/internal/core"
	"ftnet/internal/fault"
)

func setup(t *testing.T) (*core.Graph, *fault.Set, *core.Result) {
	t.Helper()
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NewSet(g.NumNodes())
	faults.Add(g.NodeIndex(40, 40))
	faults.Add(g.NodeIndex(41, 41))
	res, err := g.ContainTorus(faults, core.ExtractOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, faults, res
}

func TestBandsRendering(t *testing.T) {
	g, faults, res := setup(t)
	rowLo, colLo := FaultWindow(g, faults, 24, 60)
	out, err := Bands(g, res.Bands, faults, rowLo, colLo, 24, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X") {
		t.Errorf("fault glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("band glyph missing:\n%s", out)
	}
	if strings.Contains(out, "!") {
		t.Errorf("unmasked fault rendered (placement bug):\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 25 { // header + 24 rows
		t.Errorf("expected 25 lines, got %d", len(lines))
	}
}

func TestRowTraceRendering(t *testing.T) {
	g, faults, res := setup(t)
	_, colLo := FaultWindow(g, faults, 24, 60)
	out, err := RowTrace(g, res.Bands, faults, res.Embedding, 40, colLo, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "*") != 60 {
		t.Errorf("expected 60 path glyphs, got %d:\n%s", strings.Count(out, "*"), out)
	}
}

func TestRowTraceShowsJumps(t *testing.T) {
	g, faults, res := setup(t)
	// Find a guest row that crosses a band in some window and check the
	// render has '*' glyphs on more than one host row.
	numCols := g.NumCols
	n := g.P.N()
	for row := 0; row < n; row++ {
		first := res.Embedding.Map[row*numCols] / numCols
		jumps := false
		for z := 1; z < 60; z++ {
			if res.Embedding.Map[row*numCols+z]/numCols != first {
				jumps = true
				break
			}
		}
		if !jumps {
			continue
		}
		out, err := RowTrace(g, res.Bands, faults, res.Embedding, row, 0, 60, 2)
		if err != nil {
			t.Fatal(err)
		}
		starRows := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "*") {
				starRows++
			}
		}
		if starRows < 2 {
			t.Errorf("jumping row rendered on %d host rows, want >= 2:\n%s", starRows, out)
		}
		return
	}
	t.Skip("no jumping row in this instance")
}

func TestRender3DRejected(t *testing.T) {
	p := core.Params{D: 3, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bands(g, nil, nil, 0, 0, 5, 5); err == nil {
		t.Error("3D render should be rejected")
	}
	if _, err := RowTrace(g, nil, nil, nil, 0, 0, 5, 1); err == nil {
		t.Error("3D trace should be rejected")
	}
}

func TestFaultWindowNoFaults(t *testing.T) {
	p := core.Params{D: 2, W: 4, Pitch: 16, Scale: 1}
	g, err := core.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	r, c := FaultWindow(g, fault.NewSet(g.NumNodes()), 10, 10)
	if r != 0 || c != 0 {
		t.Errorf("FaultWindow = (%d,%d), want origin", r, c)
	}
}
