package wire

import "testing"

// TestHotPathAllocs is the runtime counterpart of the hotpath analyzer
// (internal/analysis/hotpath) for the //ftnet:hotpath-annotated wire
// appenders: with a pre-sized destination buffer the encode inner
// loops must run allocation-free.
func TestHotPathAllocs(t *testing.T) {
	faults := []int{1, 5, 9, 42, 100}
	edges := [][2]int{{0, 1}, {0, 9}, {3, 4}, {3, 7}}
	vals := make([]int, 256)
	for i := range vals {
		vals[i] = (i * 7) % 97
	}
	buf := make([]byte, 0, 1<<14)

	check := func(name string, fn func(b []byte) ([]byte, error)) {
		t.Helper()
		if a := testing.AllocsPerRun(100, func() {
			b, err := fn(buf[:0])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			buf = b[:0]
		}); a > 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, a)
		}
	}

	check("appendFaults", func(b []byte) ([]byte, error) { return appendFaults(b, faults) })
	check("appendEdges", func(b []byte) ([]byte, error) { return appendEdges(b, edges) })
	check("appendVals", func(b []byte) ([]byte, error) { return appendVals(b, vals) })
}
