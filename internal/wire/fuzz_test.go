package wire

import (
	"errors"
	"reflect"
	"testing"

	"ftnet/internal/rng"
)

// FuzzWireCodec drives both decoders with arbitrary bytes and, when the
// input parses as valid fuzz parameters, a structured
// build-encode-decode cycle. Invariants, in order of importance:
//
//  1. Decoding never panics and never allocates beyond the payload size
//     class — any failure is a typed ErrCorrupt.
//  2. If raw bytes decode successfully, re-encoding the result
//     reproduces them bit for bit (canonical encoding).
//  3. decode(encode(snapshot)) is the identity for every structurally
//     valid snapshot the parameters can describe.
//
// Wired into the CI fuzz-smoke job alongside FuzzSession.
func FuzzWireCodec(f *testing.F) {
	seedSnap, _ := EncodeSnapshot(&Snapshot{
		Topology: "main", Generation: 3, Side: 4, Dims: 2,
		Faults: []int{1, 9}, Map: identity(16),
	})
	seedDelta, _ := EncodeDelta(&Delta{
		Topology: "main", FromGeneration: 3, ToGeneration: 5, Side: 4, Dims: 2,
		Faults: []int{2}, Checksum: Checksum(identity(16)),
		Cols: []ColumnUpdate{{Col: 1, Vals: []int{1, 5, 9, 13}}},
	})
	f.Add(seedSnap, uint64(1), 4, 2)
	f.Add(seedDelta, uint64(2), 5, 3)
	f.Add([]byte("FTW1"), uint64(3), 1, 1)
	f.Add([]byte(nil), uint64(4), 64, 2)

	f.Fuzz(func(t *testing.T, raw []byte, seed uint64, side, dims int) {
		// Invariants 1+2: raw decoding is total and canonical.
		if s, err := DecodeSnapshot(raw); err == nil {
			b, err := EncodeSnapshot(s)
			if err != nil {
				t.Fatalf("decoded snapshot does not re-encode: %v", err)
			}
			if string(b) != string(raw) {
				t.Fatalf("snapshot encoding not canonical:\n in  %x\n out %x", raw, b)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeSnapshot error is not ErrCorrupt: %v", err)
		}
		if d, err := DecodeDelta(raw); err == nil {
			b, err := EncodeDelta(d)
			if err != nil {
				t.Fatalf("decoded delta does not re-encode: %v", err)
			}
			if string(b) != string(raw) {
				t.Fatalf("delta encoding not canonical:\n in  %x\n out %x", raw, b)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeDelta error is not ErrCorrupt: %v", err)
		}

		// Invariant 3: structured round trip for a snapshot derived from
		// the fuzzed parameters.
		if side < 1 || side > 32 || dims < 1 || dims > 3 {
			return
		}
		s := randomSnapshot(rng.NewPCG(seed, 99), side, dims)
		b, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("encode(%d^%d): %v", side, dims, err)
		}
		got, err := DecodeSnapshot(b)
		if err != nil {
			t.Fatalf("decode(encode): %v", err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
		}
	})
}

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
