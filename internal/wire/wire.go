// Package wire is ftnetd's compact binary embedding encoding: the
// fleet-scale alternative to the JSON wire, shared by the daemon
// (internal/server), its clients (examples, cmd/ftnet loadgen) and the
// offline decoder (cmd/ftnet wire).
//
// Two payload kinds share a common header (magic, kind, topology id):
//
//	full   one committed embedding snapshot: generation, guest geometry,
//	       the FNV-1a map checksum, the fault set, the edge-fault set,
//	       and the whole guest map, varint-packed (each entry a zigzag
//	       delta against its row-major predecessor — near-identity maps
//	       cost ~1 byte/node).
//	delta  the columns changed between two generations: the head
//	       checksum, the head fault set, the head edge-fault set, and
//	       for each changed guest column its full value slice (Side
//	       entries, zigzag delta-packed within the column). Apply
//	       patches a full snapshot forward and re-verifies the
//	       checksum, so a client can never silently hold state the
//	       server did not serve.
//
// Edge faults are canonical (u < v) pairs sorted lexicographically and
// gap-encoded: per edge a uvarint u-gap against the previous edge's u,
// then a uvarint v-gap (against u when u advanced, against the previous
// v otherwise) — a clustered edge burst costs ~2 bytes/edge.
//
// Every decoder is total: arbitrary input bytes produce either a valid
// message or an error wrapping ErrCorrupt — never a panic, never an
// unbounded allocation (declared lengths are checked against the bytes
// actually present before any slice is made). FuzzWireCodec pins this.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"ftnet/internal/fterr"
)

// ContentType is the media type negotiated (via Accept) for binary
// payloads on the ftnetd wire.
const ContentType = "application/x-ftnet-wire"

// Payload kinds (the byte after the magic).
const (
	KindFull  byte = 1
	KindDelta byte = 2
)

// magic prefixes every payload; the trailing byte versions the format.
var magic = [4]byte{'F', 'T', 'W', '1'}

// ErrCorrupt reports an undecodable payload: bad magic, truncated or
// trailing bytes, an implausible length, or a failed checksum. It is a
// coded sentinel: errors.Is identifies it through %w wrapping, and
// fterr.CodeOf reads fterr.Corrupt off the same chain (resync class —
// the holder's copy is untrustworthy, refetch).
var ErrCorrupt error = &fterr.E{Code: fterr.Corrupt, Op: "wire", Msg: "corrupt payload"}

// ErrMismatch reports a delta that does not apply to the snapshot at
// hand (wrong topology, geometry, or base generation, or a post-apply
// checksum failure). The client's recovery is a full resync, which is
// exactly what its fterr.ResyncRequired code prescribes.
var ErrMismatch error = &fterr.E{Code: fterr.ResyncRequired, Op: "wire", Msg: "delta does not apply to this snapshot"}

// Decoder sanity caps: a corrupt header must not provoke huge
// allocations or overflow, so declared geometry is bounded before any
// buffer is sized. The map length is additionally bounded by the bytes
// actually present (every entry costs at least one byte).
const (
	maxTopology = 256
	maxDims     = 16
	maxSide     = 1 << 20
	maxEntries  = 1 << 28
	maxValue    = int64(1) << 40
)

// Snapshot is one full committed embedding state on the wire — the
// binary twin of the daemon's JSON embedding response.
type Snapshot struct {
	// Topology is the hosting topology's id.
	Topology string
	// Generation counts the daemon's successful commits.
	Generation int64
	// Side and Dims give the guest torus geometry; len(Map) = Side^Dims.
	Side, Dims int
	// Faults is the committed fault set, strictly increasing.
	Faults []int
	// Edges is the committed edge-fault set: canonical {u, v} pairs with
	// u < v, lexicographically strictly increasing.
	Edges [][2]int
	// Map lists the host node for each guest node in row-major order.
	Map []int
	// Checksum is the FNV-1a hash of Map (see Checksum); decoders verify
	// it, so a Snapshot in hand is always internally consistent.
	Checksum uint64
}

// ColumnUpdate carries one changed guest column: the Side map entries
// for guest nodes j*numCols+Col, j in [0, Side).
type ColumnUpdate struct {
	Col  int
	Vals []int
}

// Delta is the diff between two committed generations: apply the column
// updates to the full snapshot at FromGeneration and you hold the full
// snapshot at ToGeneration (Apply verifies this against Checksum).
type Delta struct {
	Topology                     string
	FromGeneration, ToGeneration int64
	Side, Dims                   int
	// Faults is the complete fault set at ToGeneration.
	Faults []int
	// Edges is the complete edge-fault set at ToGeneration (canonical,
	// lexicographically strictly increasing, like Snapshot.Edges).
	Edges [][2]int
	// Cols lists the changed guest columns, strictly increasing by Col.
	Cols []ColumnUpdate
	// Checksum is the FNV-1a hash of the full map at ToGeneration.
	Checksum uint64
}

// NumCols returns the guest column count Side^(Dims-1).
func (s *Snapshot) NumCols() int { return numCols(s.Side, s.Dims) }

func numCols(side, dims int) int {
	n := 1
	for i := 1; i < dims; i++ {
		n *= side
	}
	return n
}

// Checksum hashes an embedding map: FNV-1a over the little-endian
// 64-bit entries, identical to the checksum field of the JSON wire
// (server.MapChecksum delegates here).
func Checksum(m []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range m {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ---------------------------------------------------------------------------
// Encoding.

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func appendHeader(b []byte, kind byte, topology string) ([]byte, error) {
	if len(topology) > maxTopology {
		return nil, fterr.New(fterr.Invalid, "wire.Encode", "topology id longer than %d bytes", maxTopology)
	}
	b = append(b, magic[:]...)
	b = append(b, kind)
	b = binary.AppendUvarint(b, uint64(len(topology)))
	b = append(b, topology...)
	return b, nil
}

func checkGeometry(side, dims, gen int64) error {
	if dims < 1 || dims > maxDims {
		return fterr.New(fterr.Invalid, "wire", "dims %d out of [1, %d]", dims, maxDims)
	}
	if side < 1 || side > maxSide {
		return fterr.New(fterr.Invalid, "wire", "side %d out of [1, %d]", side, maxSide)
	}
	if gen < 0 {
		return fterr.New(fterr.Invalid, "wire", "negative generation %d", gen)
	}
	return nil
}

// appendFaults packs a strictly increasing fault list: count, first
// value, then successive differences (all uvarints).
//
//ftnet:hotpath
func appendFaults(b []byte, faults []int) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(faults)))
	prev := -1
	for _, v := range faults {
		if v <= prev {
			return nil, fterr.New(fterr.Invalid, "wire.Encode", "fault list not strictly increasing at %d", v)
		}
		b = binary.AppendUvarint(b, uint64(v-prev-1))
		prev = v
	}
	return b, nil
}

// appendEdges packs a canonical (u < v), lexicographically strictly
// increasing edge-fault list: count, then per edge the uvarint gap
// du = u - prevU and a second uvarint dv — v - u - 1 when u advanced,
// v - prevV - 1 when it did not (v strictly increases within a u run).
//
//ftnet:hotpath
func appendEdges(b []byte, edges [][2]int) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(edges)))
	prevU, prevV := 0, -1
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= v || int64(v) >= maxValue {
			return nil, fterr.New(fterr.Invalid, "wire.Encode", "edge {%d, %d} not canonical (want 0 <= u < v)", u, v)
		}
		if i > 0 && (u < prevU || (u == prevU && v <= prevV)) {
			return nil, fterr.New(fterr.Invalid, "wire.Encode", "edge list not strictly increasing at {%d, %d}", u, v)
		}
		du := u - prevU
		b = binary.AppendUvarint(b, uint64(du))
		if i == 0 || du > 0 {
			b = binary.AppendUvarint(b, uint64(v-u-1))
		} else {
			b = binary.AppendUvarint(b, uint64(v-prevV-1))
		}
		prevU, prevV = u, v
	}
	return b, nil
}

// appendVals packs map entries as zigzag deltas against the previous
// entry (prev starts at 0).
//
//ftnet:hotpath
func appendVals(b []byte, vals []int) ([]byte, error) {
	prev := 0
	for _, v := range vals {
		if v < 0 || int64(v) >= maxValue {
			return nil, fterr.New(fterr.Invalid, "wire.Encode", "map entry %d out of range", v)
		}
		b = binary.AppendVarint(b, int64(v-prev))
		prev = v
	}
	return b, nil
}

// EncodeSnapshot renders a full snapshot. The checksum written to the
// wire is computed from Map (s.Checksum is not trusted).
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if err := checkGeometry(int64(s.Side), int64(s.Dims), s.Generation); err != nil {
		return nil, err
	}
	if want := mapLen(s.Side, s.Dims); want != len(s.Map) {
		return nil, fterr.New(fterr.Invalid, "wire.EncodeSnapshot", "map has %d entries, want side^dims = %d", len(s.Map), want)
	}
	b, err := appendHeader(make([]byte, 0, 16+len(s.Topology)+2*len(s.Map)), KindFull, s.Topology)
	if err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(s.Generation))
	b = binary.AppendUvarint(b, uint64(s.Side))
	b = binary.AppendUvarint(b, uint64(s.Dims))
	b = binary.LittleEndian.AppendUint64(b, Checksum(s.Map))
	if b, err = appendFaults(b, s.Faults); err != nil {
		return nil, err
	}
	if b, err = appendEdges(b, s.Edges); err != nil {
		return nil, err
	}
	return appendVals(b, s.Map)
}

// EncodeDelta renders a generation diff. Cols must be strictly
// increasing by Col, each carrying exactly Side values.
func EncodeDelta(d *Delta) ([]byte, error) {
	if err := checkGeometry(int64(d.Side), int64(d.Dims), d.FromGeneration); err != nil {
		return nil, err
	}
	if d.ToGeneration < d.FromGeneration {
		return nil, fterr.New(fterr.Invalid, "wire.EncodeDelta", "delta runs backwards (%d -> %d)", d.FromGeneration, d.ToGeneration)
	}
	nc := numCols(d.Side, d.Dims)
	b, err := appendHeader(make([]byte, 0, 64+len(d.Topology)+2*len(d.Cols)*d.Side), KindDelta, d.Topology)
	if err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(d.FromGeneration))
	b = binary.AppendUvarint(b, uint64(d.ToGeneration))
	b = binary.AppendUvarint(b, uint64(d.Side))
	b = binary.AppendUvarint(b, uint64(d.Dims))
	b = binary.LittleEndian.AppendUint64(b, d.Checksum)
	if b, err = appendFaults(b, d.Faults); err != nil {
		return nil, err
	}
	if b, err = appendEdges(b, d.Edges); err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(len(d.Cols)))
	prev := -1
	for _, cu := range d.Cols {
		if cu.Col <= prev || cu.Col >= nc {
			return nil, fterr.New(fterr.Invalid, "wire.EncodeDelta", "column %d out of order or out of [0, %d)", cu.Col, nc)
		}
		if len(cu.Vals) != d.Side {
			return nil, fterr.New(fterr.Invalid, "wire.EncodeDelta", "column %d has %d values, want side = %d", cu.Col, len(cu.Vals), d.Side)
		}
		b = binary.AppendUvarint(b, uint64(cu.Col-prev-1))
		prev = cu.Col
		if b, err = appendVals(b, cu.Vals); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Decoding.

// reader is a bounds-checked cursor over a payload.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) remaining() int { return len(r.b) - r.pos }

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, corrupt("truncated %s", what)
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, corrupt("truncated %s", what)
	}
	r.pos += n
	return v, nil
}

func (r *reader) uint64(what string) (uint64, error) {
	if r.remaining() < 8 {
		return 0, corrupt("truncated %s", what)
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

// header parses the magic, the expected kind and the topology id.
func (r *reader) header(kind byte) (string, error) {
	if r.remaining() < len(magic)+1 {
		return "", corrupt("short header")
	}
	if [4]byte(r.b[r.pos:r.pos+4]) != magic {
		return "", corrupt("bad magic")
	}
	r.pos += 4
	if got := r.b[r.pos]; got != kind {
		return "", corrupt("payload kind %d, want %d", got, kind)
	}
	r.pos++
	n, err := r.uvarint("topology length")
	if err != nil {
		return "", err
	}
	if n > maxTopology || int(n) > r.remaining() {
		return "", corrupt("topology id length %d implausible", n)
	}
	id := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return id, nil
}

func (r *reader) geometry() (side, dims int, err error) {
	s, err := r.uvarint("side")
	if err != nil {
		return 0, 0, err
	}
	d, err := r.uvarint("dims")
	if err != nil {
		return 0, 0, err
	}
	if err := checkGeometry(int64(s), int64(d), 0); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if mapLen(int(s), int(d)) < 0 {
		return 0, 0, corrupt("side^dims overflows")
	}
	return int(s), int(d), nil
}

// mapLen returns side^dims, or a negative value on overflow / beyond
// the entry cap.
func mapLen(side, dims int) int {
	n := 1
	for i := 0; i < dims; i++ {
		n *= side
		if n < 0 || n > maxEntries {
			return -1
		}
	}
	return n
}

func (r *reader) faults() ([]int, error) {
	count, err := r.uvarint("fault count")
	if err != nil {
		return nil, err
	}
	if count > uint64(r.remaining()) {
		return nil, corrupt("fault count %d exceeds payload", count)
	}
	out := make([]int, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, err := r.uvarint("fault entry")
		if err != nil {
			return nil, err
		}
		v := int64(prev) + 1 + int64(gap)
		if v < 0 || v >= maxValue {
			return nil, corrupt("fault index %d out of range", v)
		}
		out = append(out, int(v))
		prev = int(v)
	}
	return out, nil
}

func (r *reader) edges() ([][2]int, error) {
	count, err := r.uvarint("edge count")
	if err != nil {
		return nil, err
	}
	if count > uint64(r.remaining()) {
		return nil, corrupt("edge count %d exceeds payload", count)
	}
	if count == 0 {
		return nil, nil
	}
	out := make([][2]int, 0, count)
	prevU, prevV := 0, -1
	for i := uint64(0); i < count; i++ {
		du, err := r.uvarint("edge u gap")
		if err != nil {
			return nil, err
		}
		dv, err := r.uvarint("edge v gap")
		if err != nil {
			return nil, err
		}
		if du > uint64(maxValue) || dv > uint64(maxValue) {
			return nil, corrupt("edge gap out of range")
		}
		u := int64(prevU) + int64(du)
		var v int64
		if i == 0 || du > 0 {
			v = u + 1 + int64(dv)
		} else {
			v = int64(prevV) + 1 + int64(dv)
		}
		if u < 0 || v <= u || v >= maxValue {
			return nil, corrupt("edge {%d, %d} out of range", u, v)
		}
		out = append(out, [2]int{int(u), int(v)})
		prevU, prevV = int(u), int(v)
	}
	return out, nil
}

// vals decodes n zigzag-delta-packed entries into dst (len n).
func (r *reader) vals(dst []int, what string) error {
	prev := int64(0)
	for i := range dst {
		dv, err := r.varint(what)
		if err != nil {
			return err
		}
		v := prev + dv
		if v < 0 || v >= maxValue {
			return corrupt("%s entry %d out of range", what, v)
		}
		dst[i] = int(v)
		prev = v
	}
	return nil
}

// Kind peeks the payload kind (KindFull or KindDelta).
func Kind(data []byte) (byte, error) {
	if len(data) < len(magic)+1 {
		return 0, corrupt("short header")
	}
	if [4]byte(data[:4]) != magic {
		return 0, corrupt("bad magic")
	}
	k := data[4]
	if k != KindFull && k != KindDelta {
		return 0, corrupt("unknown payload kind %d", k)
	}
	return k, nil
}

// DecodeSnapshot parses and verifies a full snapshot payload. The
// returned snapshot's checksum matches its map by construction.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := &reader{b: data}
	topo, err := r.header(KindFull)
	if err != nil {
		return nil, err
	}
	gen, err := r.uvarint("generation")
	if err != nil {
		return nil, err
	}
	if gen > uint64(maxValue) {
		return nil, corrupt("generation %d out of range", gen)
	}
	side, dims, err := r.geometry()
	if err != nil {
		return nil, err
	}
	sum, err := r.uint64("checksum")
	if err != nil {
		return nil, err
	}
	faults, err := r.faults()
	if err != nil {
		return nil, err
	}
	edges, err := r.edges()
	if err != nil {
		return nil, err
	}
	n := mapLen(side, dims)
	if n > r.remaining() {
		return nil, corrupt("map of %d entries exceeds payload", n)
	}
	m := make([]int, n)
	if err := r.vals(m, "map"); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	if got := Checksum(m); got != sum {
		return nil, corrupt("map checksum %016x does not match header %016x", got, sum)
	}
	return &Snapshot{
		Topology:   topo,
		Generation: int64(gen),
		Side:       side,
		Dims:       dims,
		Faults:     faults,
		Edges:      edges,
		Map:        m,
		Checksum:   sum,
	}, nil
}

// DecodeDelta parses a delta payload. Its checksum covers the full map
// at ToGeneration and is verified by Apply, not here.
func DecodeDelta(data []byte) (*Delta, error) {
	r := &reader{b: data}
	topo, err := r.header(KindDelta)
	if err != nil {
		return nil, err
	}
	from, err := r.uvarint("from generation")
	if err != nil {
		return nil, err
	}
	to, err := r.uvarint("to generation")
	if err != nil {
		return nil, err
	}
	if from > to || to > uint64(maxValue) {
		return nil, corrupt("generation range %d -> %d invalid", from, to)
	}
	side, dims, err := r.geometry()
	if err != nil {
		return nil, err
	}
	sum, err := r.uint64("checksum")
	if err != nil {
		return nil, err
	}
	faults, err := r.faults()
	if err != nil {
		return nil, err
	}
	edges, err := r.edges()
	if err != nil {
		return nil, err
	}
	count, err := r.uvarint("column count")
	if err != nil {
		return nil, err
	}
	nc := numCols(side, dims)
	if count > uint64(nc) || count > uint64(r.remaining()) {
		return nil, corrupt("column count %d implausible", count)
	}
	cols := make([]ColumnUpdate, 0, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		gap, err := r.uvarint("column index")
		if err != nil {
			return nil, err
		}
		col := int64(prev) + 1 + int64(gap)
		if col < 0 || col >= int64(nc) {
			return nil, corrupt("column %d out of [0, %d)", col, nc)
		}
		if side > r.remaining() {
			return nil, corrupt("column of %d values exceeds payload", side)
		}
		vals := make([]int, side)
		if err := r.vals(vals, "column"); err != nil {
			return nil, err
		}
		cols = append(cols, ColumnUpdate{Col: int(col), Vals: vals})
		prev = int(col)
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	return &Delta{
		Topology:       topo,
		FromGeneration: int64(from),
		ToGeneration:   int64(to),
		Side:           side,
		Dims:           dims,
		Faults:         faults,
		Edges:          edges,
		Cols:           cols,
		Checksum:       sum,
	}, nil
}

// ---------------------------------------------------------------------------
// Applying deltas.

// Apply patches base forward with d and returns the full snapshot at
// d.ToGeneration. It refuses (ErrMismatch) a delta for a different
// topology, geometry, or base generation, and re-verifies the patched
// map against the delta's checksum — a stale or mangled chain can never
// silently produce a state the server did not serve. base is not
// modified.
func Apply(base *Snapshot, d *Delta) (*Snapshot, error) {
	if base.Topology != d.Topology {
		return nil, fmt.Errorf("%w: topology %q vs %q", ErrMismatch, base.Topology, d.Topology)
	}
	if base.Side != d.Side || base.Dims != d.Dims {
		return nil, fmt.Errorf("%w: geometry %d^%d vs %d^%d", ErrMismatch, base.Side, base.Dims, d.Side, d.Dims)
	}
	if base.Generation != d.FromGeneration {
		return nil, fmt.Errorf("%w: delta starts at generation %d, snapshot is at %d",
			ErrMismatch, d.FromGeneration, base.Generation)
	}
	nc := numCols(d.Side, d.Dims)
	m := append([]int(nil), base.Map...)
	for _, cu := range d.Cols {
		if cu.Col < 0 || cu.Col >= nc || len(cu.Vals) != d.Side {
			return nil, fmt.Errorf("%w: malformed column update %d", ErrMismatch, cu.Col)
		}
		for j, v := range cu.Vals {
			m[j*nc+cu.Col] = v
		}
	}
	if got := Checksum(m); got != d.Checksum {
		return nil, fmt.Errorf("%w: patched map checksum %016x does not match delta %016x",
			ErrMismatch, got, d.Checksum)
	}
	return &Snapshot{
		Topology:   d.Topology,
		Generation: d.ToGeneration,
		Side:       d.Side,
		Dims:       d.Dims,
		Faults:     append([]int(nil), d.Faults...),
		Edges:      append([][2]int(nil), d.Edges...),
		Map:        m,
		Checksum:   d.Checksum,
	}, nil
}
