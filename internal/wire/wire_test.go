package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ftnet/internal/rng"
)

// randomSnapshot builds a structurally valid snapshot with a plausible
// column-preserving map plus a sprinkle of template rewrites.
func randomSnapshot(r *rng.PCG, side, dims int) *Snapshot {
	nc := numCols(side, dims)
	n := side * nc
	m := make([]int, n)
	for j := 0; j < side; j++ {
		row := r.Intn(2 * side)
		for z := 0; z < nc; z++ {
			m[j*nc+z] = row*nc + z
		}
	}
	for i := 0; i < n/7; i++ {
		m[r.Intn(n)] = r.Intn(4 * n)
	}
	var faults []int
	next := 0
	for r.Intn(3) != 0 && next < 4*n {
		next += 1 + r.Intn(n)
		faults = append(faults, next)
	}
	if faults == nil {
		faults = []int{}
	}
	var edges [][2]int
	u, v := 0, 0
	for r.Intn(3) != 0 {
		if len(edges) > 0 && r.Intn(2) == 0 {
			v += 1 + r.Intn(4) // same u, strictly larger v
		} else {
			if len(edges) > 0 {
				u += 1 + r.Intn(3)
			} else {
				u = r.Intn(3)
			}
			v = u + 1 + r.Intn(4)
		}
		edges = append(edges, [2]int{u, v})
	}
	return &Snapshot{
		Topology:   "main",
		Generation: int64(r.Intn(1000)),
		Side:       side,
		Dims:       dims,
		Faults:     faults,
		Edges:      edges,
		Map:        m,
		Checksum:   Checksum(m),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := rng.NewPCG(7, 1)
	for _, geo := range []struct{ side, dims int }{
		{4, 1}, {4, 2}, {9, 2}, {5, 3}, {64, 2},
	} {
		for trial := 0; trial < 20; trial++ {
			s := randomSnapshot(r, geo.side, geo.dims)
			b, err := EncodeSnapshot(s)
			if err != nil {
				t.Fatalf("%d^%d encode: %v", geo.side, geo.dims, err)
			}
			if k, err := Kind(b); err != nil || k != KindFull {
				t.Fatalf("Kind = %d, %v; want KindFull", k, err)
			}
			got, err := DecodeSnapshot(b)
			if err != nil {
				t.Fatalf("%d^%d decode: %v", geo.side, geo.dims, err)
			}
			if !reflect.DeepEqual(got, s) {
				t.Fatalf("%d^%d round trip mismatch:\n got %+v\nwant %+v", geo.side, geo.dims, got, s)
			}
			b2, err := EncodeSnapshot(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if string(b2) != string(b) {
				t.Fatalf("re-encode is not bit-identical")
			}
		}
	}
}

func TestDeltaRoundTripAndApply(t *testing.T) {
	r := rng.NewPCG(11, 2)
	base := randomSnapshot(r, 8, 2)
	nc := base.NumCols()

	head := append([]int(nil), base.Map...)
	changed := []int{1, 3, 6}
	var cols []ColumnUpdate
	for _, c := range changed {
		vals := make([]int, base.Side)
		for j := range vals {
			head[j*nc+c] = r.Intn(4 * len(head))
			vals[j] = head[j*nc+c]
		}
		cols = append(cols, ColumnUpdate{Col: c, Vals: vals})
	}
	d := &Delta{
		Topology:       base.Topology,
		FromGeneration: base.Generation,
		ToGeneration:   base.Generation + 3,
		Side:           base.Side,
		Dims:           base.Dims,
		Faults:         []int{2, 9},
		Edges:          [][2]int{{0, 1}, {0, 7}, {4, 5}},
		Cols:           cols,
		Checksum:       Checksum(head),
	}

	b, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	if k, err := Kind(b); err != nil || k != KindDelta {
		t.Fatalf("Kind = %d, %v; want KindDelta", k, err)
	}
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatalf("decode delta: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("delta round trip mismatch:\n got %+v\nwant %+v", got, d)
	}

	patched, err := Apply(base, got)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if patched.Generation != d.ToGeneration {
		t.Fatalf("patched generation = %d, want %d", patched.Generation, d.ToGeneration)
	}
	if !reflect.DeepEqual(patched.Map, head) {
		t.Fatalf("patched map differs from head")
	}
	if !reflect.DeepEqual(patched.Faults, d.Faults) {
		t.Fatalf("patched faults = %v, want %v", patched.Faults, d.Faults)
	}
	if !reflect.DeepEqual(patched.Edges, d.Edges) {
		t.Fatalf("patched edges = %v, want %v", patched.Edges, d.Edges)
	}
	// base must be untouched.
	if base.Map[0*nc+1] == head[0*nc+1] && len(changed) > 0 {
		// possible but astronomically unlikely with random rewrites; the
		// real assertion is below
		t.Log("column 1 unchanged by rewrite (coincidence)")
	}
	if base.Generation == patched.Generation {
		t.Fatalf("Apply mutated base")
	}
}

func TestApplyMismatch(t *testing.T) {
	r := rng.NewPCG(13, 3)
	base := randomSnapshot(r, 6, 2)
	okDelta := func() *Delta {
		return &Delta{
			Topology:       base.Topology,
			FromGeneration: base.Generation,
			ToGeneration:   base.Generation + 1,
			Side:           base.Side,
			Dims:           base.Dims,
			Faults:         []int{},
			Cols:           nil,
			Checksum:       base.Checksum,
		}
	}

	if _, err := Apply(base, okDelta()); err != nil {
		t.Fatalf("empty delta should apply: %v", err)
	}

	cases := map[string]func(*Delta){
		"wrong topology":   func(d *Delta) { d.Topology = "other" },
		"wrong side":       func(d *Delta) { d.Side = base.Side + 1 },
		"wrong generation": func(d *Delta) { d.FromGeneration++ },
		"wrong checksum":   func(d *Delta) { d.Checksum++ },
	}
	for name, corrupt := range cases {
		d := okDelta()
		corrupt(d)
		if _, err := Apply(base, d); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s: err = %v, want ErrMismatch", name, err)
		}
	}
}

// TestDecodeTruncations chops a valid payload at every length; each
// prefix must fail with ErrCorrupt (strict framing: no prefix of a
// valid message is itself valid).
func TestDecodeTruncations(t *testing.T) {
	r := rng.NewPCG(17, 4)
	s := randomSnapshot(r, 6, 2)
	b, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := DecodeSnapshot(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrCorrupt", n, len(b), err)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := DecodeSnapshot(append(append([]byte(nil), b...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("FTW1"),
		[]byte("XXXXXXXXXXXX"),
		{'F', 'T', 'W', '1', 99, 0}, // unknown kind
		{'F', 'T', 'W', '1', KindFull, 0xff, 0xff, 0xff}, // huge topology length
	}
	for i, b := range cases {
		if _, err := DecodeSnapshot(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: DecodeSnapshot err = %v, want ErrCorrupt", i, err)
		}
		if _, err := DecodeDelta(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: DecodeDelta err = %v, want ErrCorrupt", i, err)
		}
	}
	// Declared map length far beyond the payload must fail before
	// allocating: side=2^20, dims=16 passes geometry caps but the
	// remaining-bytes check rejects it instantly.
	huge := []byte{'F', 'T', 'W', '1', KindFull, 0}
	huge = append(huge, 5)                  // generation
	huge = append(huge, 0x80, 0x80, 0x40)   // side = 1<<20
	huge = append(huge, 16)                 // dims
	huge = append(huge, make([]byte, 8)...) // checksum
	huge = append(huge, 0)                  // faults
	if _, err := DecodeSnapshot(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge declared map: err = %v, want ErrCorrupt", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	good := &Snapshot{Topology: "t", Side: 2, Dims: 2, Faults: []int{}, Map: []int{0, 1, 2, 3}}
	if _, err := EncodeSnapshot(good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"zero side", func(s *Snapshot) { s.Side = 0 }},
		{"dims too big", func(s *Snapshot) { s.Dims = maxDims + 1 }},
		{"map length", func(s *Snapshot) { s.Map = s.Map[:3] }},
		{"negative entry", func(s *Snapshot) { s.Map = []int{0, 1, -2, 3} }},
		{"unsorted faults", func(s *Snapshot) { s.Faults = []int{5, 5} }},
		{"negative generation", func(s *Snapshot) { s.Generation = -1 }},
		{"self-loop edge", func(s *Snapshot) { s.Edges = [][2]int{{2, 2}} }},
		{"reversed edge", func(s *Snapshot) { s.Edges = [][2]int{{3, 1}} }},
		{"negative edge endpoint", func(s *Snapshot) { s.Edges = [][2]int{{-1, 2}} }},
		{"duplicate edge", func(s *Snapshot) { s.Edges = [][2]int{{1, 2}, {1, 2}} }},
		{"unsorted edges", func(s *Snapshot) { s.Edges = [][2]int{{1, 4}, {1, 2}} }},
	}
	for _, tc := range bad {
		s := *good
		s.Map = append([]int(nil), good.Map...)
		tc.mut(&s)
		if _, err := EncodeSnapshot(&s); err == nil {
			t.Errorf("%s: encode accepted invalid snapshot", tc.name)
		}
	}

	d := &Delta{Topology: "t", Side: 2, Dims: 2, FromGeneration: 2, ToGeneration: 1, Faults: []int{}}
	if _, err := EncodeDelta(d); err == nil {
		t.Error("backwards delta accepted")
	}
	d.ToGeneration = 3
	d.Cols = []ColumnUpdate{{Col: 0, Vals: []int{1}}}
	if _, err := EncodeDelta(d); err == nil {
		t.Error("short column accepted")
	}
	d.Cols = []ColumnUpdate{{Col: 2, Vals: []int{1, 2}}}
	if _, err := EncodeDelta(d); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestChecksumMatchesKnownFNV(t *testing.T) {
	// FNV-1a offset basis for the empty input.
	if got := Checksum(nil); got != 0xcbf29ce484222325 {
		t.Fatalf("Checksum(nil) = %#x, want FNV-1a offset basis", got)
	}
	if Checksum([]int{1}) == Checksum([]int{2}) {
		t.Fatal("distinct maps collide trivially")
	}
	if Checksum([]int{math.MaxInt32}) == Checksum(nil) {
		t.Fatal("non-empty map hashes like empty")
	}
}
