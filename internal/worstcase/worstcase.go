// Package worstcase implements D^d_{n,k}, the paper's Theorem 3
// construction tolerating any k worst-case node and edge faults.
//
// For d = 2 (Theorem 13): with b = k^{1/3}, the host is an m x m torus,
// m ~ n + b^4, augmented with jump edges (i +- (b+1), j) and
// (i, j +- (b^2+1)); degree 8. Masking uses straight bands only: b^3
// horizontal bands of width b and b^2 vertical bands of width b^2. The
// pigeonhole argument: some residue class i mod (b+1) of rows carries at
// most b^2 faults; mask all faults outside class-i rows with horizontal
// bands lying strictly between class rows, then find a residue class
// j mod (b^2+1) of columns with no remaining faults and finish with
// vertical bands.
//
// For general d: b = k^{1/(2^d-1)}, dimension i uses k_i = b^{2^d - 2^{i-1}}
// bands of width b_i = b^{2^{i-1}} and jump edges over b_i nodes; each stage
// passes at most k_i / (b_i + 1) <= k_{i+1} faults to the next, and the last
// stage pigeonholes into an empty class.
//
// Divisibility refinement (DESIGN.md, refinement 4): the residue-class
// argument needs (b_i + 1) | m for every i and b_d | (m - n); m is grown
// minimally above n + b^{2^d} to satisfy both (a CRT search; the classes
// are pairwise coprime to b so a solution always exists nearby).
package worstcase

import (
	"fmt"

	"ftnet/internal/embed"
	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/torus"
)

// Params fixes an instance of D^d_{n,k}. N is the minimum guest side; the
// paper's divisibility round-offs are resolved by letting the actual side
// Side() land at the nearest value >= N compatible with the residue-class
// structure (see DESIGN.md, refinement 4). The overshoot is bounded by
// lcm(b_i+1) + b_d, i.e. o(k^{2^d/(2^d-1)}).
type Params struct {
	D int // dimension >= 1
	N int // minimum guest torus side, >= 3
	K int // worst-case fault budget >= 1

	// Derived by Resolve.
	b      int   // base b = ceil(k^{1/(2^d-1)}), at least 2
	widths []int // widths[i] = b^{2^i}, the band width of dimension i
	m      int   // host side
	n      int   // actual guest side, >= N
	counts []int // counts[i] = (m-n)/widths[i], bands per dimension
}

// Resolve computes the derived quantities and validates the instance.
func (p *Params) Resolve() error {
	if p.D < 1 {
		return fmt.Errorf("worstcase: dimension %d < 1", p.D)
	}
	if p.N < 3 {
		return fmt.Errorf("worstcase: side %d < 3", p.N)
	}
	if p.K < 1 {
		return fmt.Errorf("worstcase: fault budget %d < 1", p.K)
	}
	// b = smallest integer with b^(2^d - 1) >= k, floored at 2.
	exp := 1<<uint(p.D) - 1
	b := 2
	for ipow(b, exp) < p.K {
		b++
	}
	p.b = b
	p.widths = make([]int, p.D)
	p.widths[0] = b
	for i := 1; i < p.D; i++ {
		p.widths[i] = p.widths[i-1] * p.widths[i-1]
	}
	wd := p.widths[p.D-1]
	extra := wd * wd // b^{2^d}, the total masked width per dimension
	masked := ((extra + wd - 1) / wd) * wd
	l := 1
	for _, w := range p.widths {
		l = lcm(l, w+1)
	}
	// Smallest multiple of l with m - masked >= N.
	m := ((p.N + masked + l - 1) / l) * l
	p.m = m
	p.n = m - masked
	p.counts = make([]int, p.D)
	for i, w := range p.widths {
		p.counts[i] = masked / w
		slots := m / (w + 1)
		if p.counts[i] > slots {
			return fmt.Errorf("worstcase: dimension %d needs %d bands but has only %d slots (n too small for k)",
				i, p.counts[i], slots)
		}
	}
	if m <= 2*(wd+1) {
		return fmt.Errorf("worstcase: host side %d too small for jump edges of length %d", m, wd+1)
	}
	return nil
}

// Side returns the actual guest torus side n (>= the requested N).
func (p *Params) Side() int { return p.n }

// B returns the derived base b.
func (p *Params) B() int { return p.b }

// M returns the host side m.
func (p *Params) M() int { return p.m }

// Widths returns the per-dimension band widths b_i.
func (p *Params) Widths() []int { return append([]int(nil), p.widths...) }

// Capacity returns b^{2^d - 1}, the number of worst-case faults the
// instance provably tolerates (>= K by construction).
func (p *Params) Capacity() int { return ipow(p.b, 1<<uint(p.D)-1) }

// NumNodes returns m^d.
func (p *Params) NumNodes() int { return ipow(p.m, p.D) }

// Degree returns 4d: 2d torus edges plus 2d jump edges.
func (p *Params) Degree() int { return 4 * p.D }

func ipow(base, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= base
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Graph is the host network D^d_{n,k}: the d-dimensional torus of side m
// with, in each dimension i, jump edges over b_i nodes (step b_i + 1).
type Graph struct {
	P     Params
	Shape grid.Shape
}

// NewGraph resolves the parameters and returns the host.
func NewGraph(p Params) (*Graph, error) {
	if err := p.Resolve(); err != nil {
		return nil, err
	}
	return &Graph{P: p, Shape: grid.Uniform(p.D, p.m)}, nil
}

// NumNodes returns the host node count.
func (g *Graph) NumNodes() int { return g.Shape.Size() }

// Neighbors appends the 4d neighbors of idx.
func (g *Graph) Neighbors(idx int, buf []int) []int {
	coord := g.Shape.Coord(idx, make([]int, g.P.D))
	for i := range coord {
		orig := coord[i]
		for _, step := range [2]int{1, g.P.widths[i] + 1} {
			coord[i] = grid.Add(orig, step, g.P.m)
			buf = append(buf, g.Shape.Index(coord))
			coord[i] = grid.Sub(orig, step, g.P.m)
			buf = append(buf, g.Shape.Index(coord))
		}
		coord[i] = orig
	}
	return buf
}

// Adjacent reports adjacency in the host.
func (g *Graph) Adjacent(u, v int) bool {
	if u == v {
		return false
	}
	cu := g.Shape.Coord(u, nil)
	cv := g.Shape.Coord(v, nil)
	diffDim := -1
	for i := range cu {
		if cu[i] != cv[i] {
			if diffDim >= 0 {
				return false
			}
			diffDim = i
		}
	}
	if diffDim < 0 {
		return false
	}
	d := grid.Dist(cu[diffDim], cv[diffDim], g.P.m)
	return d == 1 || d == g.P.widths[diffDim]+1
}

// Masking is a set of straight bands per dimension: Bottoms[i] lists the
// band bottoms of dimension i (each masking widths[i] consecutive
// hyperplanes), sorted. Passed[i] records how many faults stage i received
// from earlier stages (Passed[0] is the total fault count), matching the
// k_i accounting of the paper's cascade.
type Masking struct {
	Bottoms [][]int
	Passed  []int
}

// Mask runs the per-dimension pigeonhole cascade over the faulty nodes.
// It fails only if the fault set exceeds what the instance tolerates
// (more than Capacity() faults, or a pattern outside the guarantee).
func (g *Graph) Mask(faults *fault.Set) (*Masking, error) {
	p := g.P
	m := p.m
	type pt = []int
	var remaining []pt
	faults.ForEach(func(idx int) {
		remaining = append(remaining, g.Shape.Coord(idx, make([]int, p.D)))
	})
	mk := &Masking{Bottoms: make([][]int, p.D), Passed: make([]int, p.D)}
	for dim := 0; dim < p.D; dim++ {
		mk.Passed[dim] = len(remaining)
		w := p.widths[dim]
		mod := w + 1
		numClasses := mod // m % mod == 0, classes are uniform
		classCount := make([]int, numClasses)
		for _, f := range remaining {
			classCount[f[dim]%mod]++
		}
		best := 0
		for c := 1; c < numClasses; c++ {
			if classCount[c] < classCount[best] {
				best = c
			}
		}
		if dim == p.D-1 && classCount[best] > 0 {
			return nil, fmt.Errorf("worstcase: final dimension has no fault-free residue class (%d faults remain; budget exceeded)",
				len(remaining))
		}
		// Mask every fault outside class `best` with a band in its slot.
		slotSet := make(map[int]struct{})
		var next []pt
		for _, f := range remaining {
			x := f[dim]
			if x%mod == best {
				next = append(next, f)
				continue
			}
			slot := grid.FwdGap(best+1, x, m) / mod
			slotSet[slot] = struct{}{}
		}
		if len(slotSet) > p.counts[dim] {
			return nil, fmt.Errorf("worstcase: dimension %d needs %d bands, budget is %d (budget exceeded)",
				dim, len(slotSet), p.counts[dim])
		}
		// Pad with unused slots up to exactly counts[dim] bands so the
		// unmasked part has side exactly n.
		totalSlots := m / mod
		for s := 0; s < totalSlots && len(slotSet) < p.counts[dim]; s++ {
			if _, ok := slotSet[s]; !ok {
				slotSet[s] = struct{}{}
			}
		}
		if len(slotSet) != p.counts[dim] {
			return nil, fmt.Errorf("worstcase: internal: dimension %d has %d bands, want %d", dim, len(slotSet), p.counts[dim])
		}
		bottoms := make([]int, 0, len(slotSet))
		for s := range slotSet {
			bottoms = append(bottoms, grid.Add(best+1, s*mod, m))
		}
		sortInts(bottoms)
		mk.Bottoms[dim] = bottoms
		remaining = next
	}
	if len(remaining) != 0 {
		return nil, fmt.Errorf("worstcase: internal: %d faults left after cascade", len(remaining))
	}
	return mk, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// UnmaskedCoords returns, per dimension, the sorted coordinates not covered
// by any band; each list has exactly n entries and consecutive entries
// (cyclically) differ by 1 or widths[i]+1, matching the host's edges.
func (g *Graph) UnmaskedCoords(mk *Masking) ([][]int, error) {
	p := g.P
	out := make([][]int, p.D)
	for dim := 0; dim < p.D; dim++ {
		w := p.widths[dim]
		masked := make([]bool, p.m)
		for _, b := range mk.Bottoms[dim] {
			for o := 0; o < w; o++ {
				masked[grid.Add(b, o, p.m)] = true
			}
		}
		list := make([]int, 0, p.n)
		for x := 0; x < p.m; x++ {
			if !masked[x] {
				list = append(list, x)
			}
		}
		if len(list) != p.n {
			return nil, fmt.Errorf("worstcase: dimension %d has %d unmasked coordinates, want %d (bands overlap)",
				dim, len(list), p.n)
		}
		for i := range list {
			next := list[(i+1)%len(list)]
			gap := grid.FwdGap(list[i], next, p.m)
			if gap != 1 && gap != w+1 {
				return nil, fmt.Errorf("worstcase: dimension %d gap %d between unmasked coords (want 1 or %d)",
					dim, gap, w+1)
			}
		}
		out[dim] = list
	}
	return out, nil
}

// Extract builds the embedding of the n-torus onto the unmasked product.
func (g *Graph) Extract(mk *Masking) (*embed.Embedding, error) {
	coords, err := g.UnmaskedCoords(mk)
	if err != nil {
		return nil, err
	}
	guest, err := torus.NewUniform(torus.TorusKind, g.P.D, g.P.n)
	if err != nil {
		return nil, err
	}
	e := embed.New(guest)
	gc := make([]int, g.P.D)
	hc := make([]int, g.P.D)
	for gi := 0; gi < guest.N(); gi++ {
		guest.Shape.Coord(gi, gc)
		for i, x := range gc {
			hc[i] = coords[i][x]
		}
		e.Map[gi] = g.Shape.Index(hc)
	}
	return e, nil
}

// HostView adapts a faulty D^d_{n,k} to embed.Host, including edge faults.
type HostView struct {
	G          *Graph
	NodeFaults *fault.Set
	EdgeFaults map[[2]int]bool // canonical key: min(u,v), max(u,v)
}

// NumNodes implements embed.Host.
func (h HostView) NumNodes() int { return h.G.NumNodes() }

// Adjacent implements embed.Host.
func (h HostView) Adjacent(u, v int) bool { return h.G.Adjacent(u, v) }

// NodeFaulty implements embed.Host.
func (h HostView) NodeFaulty(u int) bool { return h.NodeFaults.Has(u) }

// EdgeFaulty implements embed.Host.
func (h HostView) EdgeFaulty(u, v int) bool {
	if h.EdgeFaults == nil {
		return false
	}
	if u > v {
		u, v = v, u
	}
	return h.EdgeFaults[[2]int{u, v}]
}

// EdgeKey canonicalizes an edge for HostView.EdgeFaults.
func EdgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Tolerate runs the full Theorem 3 pipeline: edge faults are charged to an
// endpoint (as in the paper's proof), the cascade masks everything, and the
// resulting embedding is verified against both node and edge faults.
func (g *Graph) Tolerate(nodeFaults *fault.Set, edgeFaults [][2]int) (*embed.Embedding, *Masking, error) {
	effective := nodeFaults.Clone()
	edgeMap := make(map[[2]int]bool, len(edgeFaults))
	for _, e := range edgeFaults {
		edgeMap[EdgeKey(e[0], e[1])] = true
		effective.Add(e[0]) // ascribe the edge fault to one endpoint
	}
	mk, err := g.Mask(effective)
	if err != nil {
		return nil, nil, err
	}
	emb, err := g.Extract(mk)
	if err != nil {
		return nil, nil, err
	}
	// Verifying against the effective set is strictly stronger than against
	// the original node faults (effective is a superset).
	if err := emb.Verify(HostView{G: g, NodeFaults: effective, EdgeFaults: edgeMap}); err != nil {
		return nil, nil, err
	}
	return emb, mk, nil
}
