package worstcase

import (
	"testing"

	"ftnet/internal/fault"
	"ftnet/internal/grid"
	"ftnet/internal/rng"
)

func mustGraph(t *testing.T, p Params) *Graph {
	t.Helper()
	g, err := NewGraph(p)
	if err != nil {
		t.Fatalf("NewGraph(%+v): %v", p, err)
	}
	return g
}

func TestResolveDerivedQuantities(t *testing.T) {
	p := Params{D: 2, N: 100, K: 27} // b = 3
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if p.B() != 3 {
		t.Errorf("b = %d, want 3", p.B())
	}
	w := p.Widths()
	if len(w) != 2 || w[0] != 3 || w[1] != 9 {
		t.Errorf("widths = %v, want [3 9]", w)
	}
	if p.Capacity() < 27 {
		t.Errorf("capacity %d < k", p.Capacity())
	}
	if p.Side() < 100 {
		t.Errorf("actual side %d below requested 100", p.Side())
	}
	// Masked total per dimension is >= b^4 and the host carries it.
	if p.M()-p.Side() < 81 {
		t.Errorf("m - n = %d < b^4", p.M()-p.Side())
	}
	if p.M()%(w[0]+1) != 0 || p.M()%(w[1]+1) != 0 {
		t.Errorf("m = %d not divisible by class moduli", p.M())
	}
	if (p.M()-p.Side())%w[1] != 0 {
		t.Errorf("m - n = %d not divisible by b_d", p.M()-p.Side())
	}
	// Redundancy stays linear-ish: m = n + O(k^{4/3}).
	if p.M() > p.Side()+4*81+40 {
		t.Errorf("m = %d overshoots n + O(b^4)", p.M())
	}
}

func TestResolveRejectsBadParams(t *testing.T) {
	for _, p := range []Params{{D: 0, N: 10, K: 1}, {D: 2, N: 2, K: 1}, {D: 2, N: 10, K: 0}} {
		q := p
		if err := q.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) should fail", p)
		}
	}
}

func TestDegreeUniform(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		g := mustGraph(t, Params{D: d, N: 20, K: 4})
		want := 4 * d
		r := rng.New(1)
		for trial := 0; trial < 20; trial++ {
			u := r.Intn(g.NumNodes())
			nbrs := g.Neighbors(u, nil)
			if len(nbrs) != want {
				t.Fatalf("d=%d: node %d has %d neighbors, want %d", d, u, len(nbrs), want)
			}
			seen := map[int]bool{}
			for _, v := range nbrs {
				if v == u || seen[v] {
					t.Fatalf("d=%d: degenerate edge at %d", d, u)
				}
				seen[v] = true
				if !g.Adjacent(u, v) {
					t.Fatalf("d=%d: Adjacent(%d,%d) = false for a neighbor", d, u, v)
				}
			}
		}
	}
}

func TestNoFaults(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 50, K: 8})
	emb, _, err := g.Tolerate(fault.NewSet(g.NumNodes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.P.Side()
	if len(emb.Map) != n*n {
		t.Errorf("embedding has %d nodes, want %d", len(emb.Map), n*n)
	}
}

func TestAllPatternsWithinBudget(t *testing.T) {
	// Theorem 3's guarantee is for ANY k faults: every adversarial pattern
	// at full budget must succeed.
	for _, d := range []int{1, 2} {
		n := []int{200, 60}[d-1]
		k := []int{30, 27}[d-1]
		g := mustGraph(t, Params{D: d, N: n, K: k})
		budget := g.P.Capacity()
		r := rng.New(uint64(d))
		for _, pat := range fault.AllPatterns() {
			faults, err := fault.Adversarial(pat, g.Shape, budget, g.P.B()+1, r.Split(uint64(pat)))
			if err != nil {
				t.Fatalf("d=%d %v: generator: %v", d, pat, err)
			}
			if _, _, err := g.Tolerate(faults, nil); err != nil {
				t.Errorf("d=%d pattern %v with k=%d (capacity %d): %v", d, pat, budget, g.P.Capacity(), err)
			}
		}
	}
}

func Test3DWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("3D instance is large")
	}
	g := mustGraph(t, Params{D: 3, N: 16, K: 4}) // b=2, capacity 128
	faults, err := fault.Adversarial(fault.Uniform, g.Shape, g.P.Capacity(), g.P.B()+1, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Tolerate(faults, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeFaults(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 50, K: 27})
	r := rng.New(3)
	// Half the budget as node faults, half as edge faults.
	nodeFaults := fault.NewSet(g.NumNodes())
	if err := nodeFaults.ExactRandom(r, 13); err != nil {
		t.Fatal(err)
	}
	var edges [][2]int
	for len(edges) < 13 {
		u := r.Intn(g.NumNodes())
		nbrs := g.Neighbors(u, nil)
		v := nbrs[r.Intn(len(nbrs))]
		edges = append(edges, [2]int{u, v})
	}
	if _, _, err := g.Tolerate(nodeFaults, edges); err != nil {
		t.Fatal(err)
	}
}

func TestBeyondBudgetFailsGracefully(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 40, K: 8})
	// Overload far beyond capacity.
	faults := fault.NewSet(g.NumNodes())
	faults.Bernoulli(rng.New(5), 0.4)
	if _, _, err := g.Tolerate(faults, nil); err == nil {
		t.Skip("construction absorbed 40% faults (lucky pattern)")
	}
	// Reaching here means it returned an error rather than panicking: good.
}

func TestMaskingStructure(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 50, K: 27})
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(7), 27); err != nil {
		t.Fatal(err)
	}
	mk, err := g.Mask(faults)
	if err != nil {
		t.Fatal(err)
	}
	for dim, bottoms := range mk.Bottoms {
		if len(bottoms) != (g.P.M()-g.P.Side())/g.P.widths[dim] {
			t.Errorf("dimension %d has %d bands, want %d", dim, len(bottoms), (g.P.M()-g.P.Side())/g.P.widths[dim])
		}
		// All bottoms aligned to the chosen slot structure.
		mod := g.P.widths[dim] + 1
		class := grid.Sub(bottoms[0], 1, g.P.M()) % mod
		for _, b := range bottoms {
			if grid.Sub(b, 1, g.P.M())%mod != class {
				t.Errorf("dimension %d band at %d not aligned to slot structure", dim, b)
			}
		}
	}
	coords, err := g.UnmaskedCoords(mk)
	if err != nil {
		t.Fatal(err)
	}
	for dim, list := range coords {
		if len(list) != g.P.Side() {
			t.Errorf("dimension %d unmasked count %d", dim, len(list))
		}
	}
}

func TestCapacityMatchesPaperExponent(t *testing.T) {
	// d=2: capacity b^3 with ~b^4 extra per side: the paper's
	// O(n^{3/4}) faults at linear redundancy. Check monotone growth.
	prev := 0
	for _, k := range []int{8, 27, 64, 125} {
		p := Params{D: 2, N: 500, K: k}
		if err := p.Resolve(); err != nil {
			t.Fatal(err)
		}
		if p.Capacity() < k || p.Capacity() <= prev {
			t.Errorf("capacity %d not growing past %d for k=%d", p.Capacity(), prev, k)
		}
		prev = p.Capacity()
	}
}

func TestOneDimensional(t *testing.T) {
	// d=1: a cycle with jump edges tolerating k faults (the 1-D analogue
	// the paper attributes to Alon-Chung in Section 5).
	g := mustGraph(t, Params{D: 1, N: 100, K: 10})
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(9), g.P.Capacity()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Tolerate(faults, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomFaultSetsWithinCapacityProperty: any random fault set of size
// <= capacity must be tolerated (Theorem 3 is a worst-case guarantee, so
// random sets are the easy case — but the property must never fail).
func TestRandomFaultSetsWithinCapacityProperty(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 60, K: 27})
	cap := g.P.Capacity()
	f := func(seed uint64, kByte uint8) bool {
		k := 1 + int(kByte)%cap
		faults := fault.NewSet(g.NumNodes())
		if err := faults.ExactRandom(rng.New(seed), k); err != nil {
			return false
		}
		_, _, err := g.Tolerate(faults, nil)
		return err == nil
	}
	if err := quickCheck(f, 40); err != nil {
		t.Error(err)
	}
}

// TestMaskIdempotent: masking the same fault set twice yields identical
// band families (the cascade is deterministic).
func TestMaskIdempotent(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 60, K: 27})
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(5), 20); err != nil {
		t.Fatal(err)
	}
	a, err := g.Mask(faults)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Mask(faults)
	if err != nil {
		t.Fatal(err)
	}
	for dim := range a.Bottoms {
		if len(a.Bottoms[dim]) != len(b.Bottoms[dim]) {
			t.Fatalf("dimension %d band counts differ", dim)
		}
		for i := range a.Bottoms[dim] {
			if a.Bottoms[dim][i] != b.Bottoms[dim][i] {
				t.Fatalf("dimension %d band %d differs", dim, i)
			}
		}
	}
}

// TestEmbeddingAvoidsAllBands: the extracted torus never uses a masked
// coordinate in any dimension.
func TestEmbeddingAvoidsAllBands(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 60, K: 27})
	faults := fault.NewSet(g.NumNodes())
	if err := faults.ExactRandom(rng.New(9), g.P.Capacity()); err != nil {
		t.Fatal(err)
	}
	emb, mk, err := g.Tolerate(faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	masked := make([]map[int]bool, g.P.D)
	for dim := range masked {
		masked[dim] = map[int]bool{}
		for _, b := range mk.Bottoms[dim] {
			for o := 0; o < g.P.widths[dim]; o++ {
				masked[dim][grid.Add(b, o, g.P.M())] = true
			}
		}
	}
	coord := make([]int, g.P.D)
	for _, h := range emb.Map {
		g.Shape.Coord(h, coord)
		for dim, c := range coord {
			if masked[dim][c] {
				t.Fatalf("embedding uses masked coordinate %d in dimension %d", c, dim)
			}
		}
	}
}

func quickCheck(f func(uint64, uint8) bool, n int) error {
	r := rng.New(12345)
	for i := 0; i < n; i++ {
		if !f(r.Uint64(), uint8(r.Intn(256))) {
			return errProperty(i)
		}
	}
	return nil
}

type errProperty int

func (e errProperty) Error() string { return "property failed" }

func TestHostViewEdgeFaults(t *testing.T) {
	g := mustGraph(t, Params{D: 2, N: 20, K: 4})
	h := HostView{G: g, NodeFaults: fault.NewSet(g.NumNodes()),
		EdgeFaults: map[[2]int]bool{EdgeKey(5, 3): true}}
	if !h.EdgeFaulty(3, 5) || !h.EdgeFaulty(5, 3) {
		t.Error("EdgeFaulty not symmetric")
	}
	if h.EdgeFaulty(3, 6) {
		t.Error("spurious edge fault")
	}
}
