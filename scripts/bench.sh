#!/usr/bin/env bash
# Quick benchmark harness for the performance-tracked hot paths.
#
# Runs the core benchmark set with fixed -benchtime/-count (so numbers
# are comparable across runs and machines of the same class), writes the
# averaged results as JSON, and — when a committed baseline exists —
# prints a benchstat-style comparison. The comparison is report-only: it
# never fails the build (perf deltas are reviewed by humans; see the CI
# "bench" job).
#
# Usage:
#   scripts/bench.sh                 # compare against BENCH_pr4.json, then refresh it
#   BENCH_OUT=/tmp/new.json scripts/bench.sh   # write elsewhere (CI does this)
#   BENCH_COUNT=5 scripts/bench.sh             # more repetitions
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr4.json}"
BASELINE="${BENCH_BASELINE:-BENCH_pr4.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== quick benchmarks (count=$COUNT) =="
go test -run '^$' -count "$COUNT" -benchtime 50x -benchmem \
  -bench 'BenchmarkPlaceBandsB2$|BenchmarkExtractB2$|BenchmarkSurvivalTrialScratchB2$|BenchmarkSurvivalTrialScratchDenseB2$' . | tee "$TMP"
# The sweep pair measures one full 9-rung E2 curve per op: coupled
# (nested fault sets, rung-to-rung pipeline reuse) vs per-rung
# independent evaluation. Their ratio is the coupling win.
go test -run '^$' -count "$COUNT" -benchtime 100x -benchmem \
  -bench 'BenchmarkSurvivalSweepB2$|BenchmarkSurvivalSweepIndependentB2$' . | tee -a "$TMP"
go test -run '^$' -count "$COUNT" -benchtime 5000x -benchmem \
  -bench 'BenchmarkPadBox$' ./internal/core/ | tee -a "$TMP"
# The churn family measures the delta-evaluation engine: one op is one
# churn event (fault arrival or repair) at a steady state, evaluated
# incrementally (Session) vs from scratch; Heavy pins the 10x-theorem
# standing population where the O(event footprint) vs O(standing
# footprint) separation shows. Lifetime is one full E16-style trial.
go test -run '^$' -count "$COUNT" -benchtime 200x -benchmem \
  -bench 'BenchmarkChurnSession$|BenchmarkChurnSessionHeavy$|BenchmarkChurnSessionFromScratch$|BenchmarkChurnSessionFromScratchHeavy$' . | tee -a "$TMP"
go test -run '^$' -count "$COUNT" -benchtime 30x -benchmem \
  -bench 'BenchmarkLifetime$' . | tee -a "$TMP"

python3 - "$TMP" "$OUT" "$BASELINE" <<'EOF'
import json, re, sys, datetime

raw, out, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]

runs = {}
cpu = go = ""
for line in open(raw):
    if line.startswith("cpu:"):
        cpu = line.split(":", 1)[1].strip()
    m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?", line)
    if m:
        name = m.group(1)
        runs.setdefault(name, []).append(
            (float(m.group(3)), int(m.group(4) or 0), int(m.group(5) or 0)))

bench = {}
for name, rs in runs.items():
    bench[name] = {
        "ns_per_op": round(sum(r[0] for r in rs) / len(rs), 1),
        "bytes_per_op": round(sum(r[1] for r in rs) / len(rs)),
        "allocs_per_op": round(sum(r[2] for r in rs) / len(rs)),
        "runs": len(rs),
    }

# Keep any hand-recorded pre-PR baseline blocks the existing file has.
doc = {"cpu": cpu, "benchmarks": bench,
       "config": {"benchtime": "50x (PadBox: 5000x, Sweep: 100x, Churn: 200x, Lifetime: 30x)"},
       "generated_by": "scripts/bench.sh"}
old = None
try:
    old = json.load(open(baseline_path))
    for key in old:
        if key.startswith("baseline_"):
            doc[key] = old[key]
except (FileNotFoundError, json.JSONDecodeError):
    pass

if old and old.get("benchmarks"):
    print("\n== comparison vs %s (report-only) ==" % baseline_path)
    print("%-40s %14s %14s %8s" % ("benchmark", "old ns/op", "new ns/op", "delta"))
    for name in sorted(set(old["benchmarks"]) | set(bench)):
        o = old["benchmarks"].get(name, {}).get("ns_per_op")
        n = bench.get(name, {}).get("ns_per_op")
        if o and n:
            print("%-40s %14.0f %14.0f %+7.1f%%" % (name, o, n, 100.0 * (n - o) / o))
        else:
            print("%-40s %14s %14s %8s" % (name, o or "-", n or "-", "n/a"))

json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print("\nwrote %s" % out)
EOF
