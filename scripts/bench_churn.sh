#!/usr/bin/env bash
# Batched-churn / coupled-ladder benchmark harness behind BENCH_pr9.json.
#
# Runs the PR-9 churn family and writes the averaged results plus the
# acceptance ratios as JSON:
#
#   - batched vs per-event lifetime trials on the burst-heavy mixed
#     process (bit-identical outcomes, pinned by the golden suite in
#     internal/churn; acceptance wants >= 3x),
#   - the coupled E17 repair-rate ladder vs one independent batched
#     simulation per rung (equal statistical output per op),
#   - the post-rotation re-armed churn step vs the unrotated warm step
#     (acceptance wants within 2x; before the re-arm this was the dense
#     whole-host cliff),
#   - the d=3 churn step and a d=3 burst-heavy batched trial on the
#     9.4M-node host (scale reference, no ratio).
#
# Usage:
#   scripts/bench_churn.sh                      # refresh BENCH_pr9.json
#   BENCH_OUT=/tmp/pr9.json scripts/bench_churn.sh
#   BENCH_COUNT=5 scripts/bench_churn.sh        # more repetitions
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr9.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== batched churn + ladder benchmarks (count=$COUNT) =="
go test -run '^$' -count "$COUNT" -benchtime 8x -benchmem \
  -bench 'BenchmarkLifetimeBursty$|BenchmarkLifetimeBurstyBatched$|BenchmarkLifetime$|BenchmarkLifetimeBatched$|BenchmarkRepairLadderCoupled$|BenchmarkRepairLadderIndependent$' . | tee "$TMP"
go test -run '^$' -count "$COUNT" -benchtime 100x -benchmem \
  -bench 'BenchmarkChurnSession$|BenchmarkChurnSessionRearmed$' . | tee -a "$TMP"
go test -run '^$' -count "$COUNT" -benchtime 10x -benchmem -timeout 30m \
  -bench 'BenchmarkChurnSession3D$|BenchmarkLifetimeBursty3DBatched$' . | tee -a "$TMP"

python3 - "$TMP" "$OUT" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]

runs = {}
cpu = ""
for line in open(raw):
    if line.startswith("cpu:"):
        cpu = line.split(":", 1)[1].strip()
    m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?", line)
    if m:
        runs.setdefault(m.group(1), []).append(
            (float(m.group(3)), int(m.group(4) or 0), int(m.group(5) or 0)))

bench = {}
for name, rs in runs.items():
    bench[name] = {
        "ns_per_op": round(sum(r[0] for r in rs) / len(rs), 1),
        "bytes_per_op": round(sum(r[1] for r in rs) / len(rs)),
        "allocs_per_op": round(sum(r[2] for r in rs) / len(rs)),
        "runs": len(rs),
    }

bursty = bench["BenchmarkLifetimeBursty"]["ns_per_op"]
bursty_b = bench["BenchmarkLifetimeBurstyBatched"]["ns_per_op"]
steady = bench["BenchmarkLifetime"]["ns_per_op"]
steady_b = bench["BenchmarkLifetimeBatched"]["ns_per_op"]
coupled = bench["BenchmarkRepairLadderCoupled"]["ns_per_op"]
independent = bench["BenchmarkRepairLadderIndependent"]["ns_per_op"]
warm = bench["BenchmarkChurnSession"]["ns_per_op"]
rearmed = bench["BenchmarkChurnSessionRearmed"]["ns_per_op"]
doc = {
    "cpu": cpu,
    "benchmarks": bench,
    "config": {
        "benchtime": "8x trials (churn steps: 100x, d=3: 10x)",
        "workload": "lifetime benchmarks: one op = one full churn trial on the B2 bench "
                    "host (burst-heavy mixed node+edge process, or the steady theorem-rate "
                    "process); ladder benchmarks: one op = one full E17 five-rung outcome "
                    "on the experiments' churn host; step benchmarks: one op = one "
                    "Gillespie event on a warm session (Rearmed: with an anchor-rotating "
                    "fault pinned after a cold rotated evaluation); 3D: the 9.4M-node host",
    },
    "acceptance": {
        "bursty_per_event_ns_per_op": bursty,
        "bursty_batched_ns_per_op": bursty_b,
        "bursty_batched_speedup": round(bursty / bursty_b, 1),
        "meets_3x_batched_on_bursty": bursty / bursty_b >= 3,
        "steady_batched_speedup": round(steady / steady_b, 1),
        "ladder_independent_ns_per_op": independent,
        "ladder_coupled_ns_per_op": coupled,
        "ladder_coupling_speedup": round(independent / coupled, 2),
        "ladder_coupled_cheaper": independent > coupled,
        "warm_step_ns_per_op": warm,
        "rearmed_step_ns_per_op": rearmed,
        "rearmed_over_warm": round(rearmed / warm, 2),
        "meets_rearmed_within_2x_of_warm": rearmed / warm <= 2,
    },
    "generated_by": "scripts/bench_churn.sh",
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print("\nbursty: per-event %.0f ns/op vs batched %.0f ns/op: %.1fx" % (bursty, bursty_b, bursty / bursty_b))
print("ladder: independent %.0f ns/op vs coupled %.0f ns/op: %.2fx" % (independent, coupled, independent / coupled))
print("rearmed step %.0f ns/op vs warm %.0f ns/op: %.2fx" % (rearmed, warm, rearmed / warm))
print("wrote %s" % out)
EOF
