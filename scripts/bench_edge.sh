#!/usr/bin/env bash
# Edge-churn benchmark harness behind BENCH_pr8.json.
#
# Runs the mixed node+edge churn family (one op = one Gillespie event at
# a 10x-theorem steady-state mixed population, evaluated incrementally
# through the charging pass + session delta engine vs from scratch) and
# writes the averaged results plus the PR-8 acceptance ratio as JSON.
# The acceptance criterion compares the incremental step against the
# *dense* from-scratch evaluation of the same charged fault set — the
# reference the golden-equivalence tests pin the step against.
#
# Usage:
#   scripts/bench_edge.sh                      # refresh BENCH_pr8.json
#   BENCH_OUT=/tmp/pr8.json scripts/bench_edge.sh
#   BENCH_COUNT=5 scripts/bench_edge.sh        # more repetitions
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr8.json}"
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== edge-churn benchmarks (count=$COUNT) =="
go test -run '^$' -count "$COUNT" -benchtime 100x -benchmem \
  -bench 'BenchmarkEdgeChurnSession$|BenchmarkEdgeChurnFromScratch$' . | tee "$TMP"
go test -run '^$' -count "$COUNT" -benchtime 20x -benchmem \
  -bench 'BenchmarkEdgeChurnFromScratchDense$' . | tee -a "$TMP"

python3 - "$TMP" "$OUT" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]

runs = {}
cpu = ""
for line in open(raw):
    if line.startswith("cpu:"):
        cpu = line.split(":", 1)[1].strip()
    m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?", line)
    if m:
        runs.setdefault(m.group(1), []).append(
            (float(m.group(3)), int(m.group(4) or 0), int(m.group(5) or 0)))

bench = {}
for name, rs in runs.items():
    bench[name] = {
        "ns_per_op": round(sum(r[0] for r in rs) / len(rs), 1),
        "bytes_per_op": round(sum(r[1] for r in rs) / len(rs)),
        "allocs_per_op": round(sum(r[2] for r in rs) / len(rs)),
        "runs": len(rs),
    }

inc = bench["BenchmarkEdgeChurnSession"]["ns_per_op"]
sparse = bench["BenchmarkEdgeChurnFromScratch"]["ns_per_op"]
dense = bench["BenchmarkEdgeChurnFromScratchDense"]["ns_per_op"]
doc = {
    "cpu": cpu,
    "benchmarks": bench,
    "config": {
        "benchtime": "100x (FromScratchDense: 20x)",
        "workload": "one op = one mixed node+edge Gillespie event (arrival, repair, "
                    "link flap, or link repair) on the B2 bench host at a 10x-theorem "
                    "steady-state population split evenly between node faults and edge "
                    "charges; each event is re-embedded and verified",
    },
    "acceptance": {
        "incremental_ns_per_op": inc,
        "from_scratch_dense_ns_per_op": dense,
        "from_scratch_sparse_ns_per_op": sparse,
        "incremental_speedup_vs_dense": round(dense / inc, 1),
        "incremental_speedup_vs_sparse": round(sparse / inc, 1),
        "meets_10x_vs_from_scratch": dense / inc >= 10,
    },
    "generated_by": "scripts/bench_edge.sh",
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print("\nincremental %.0f ns/op vs dense from-scratch %.0f ns/op: %.1fx" % (inc, dense, dense / inc))
print("wrote %s" % out)
EOF
