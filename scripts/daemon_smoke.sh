#!/usr/bin/env bash
# End-to-end smoke test of ftnetd: start the daemon, report faults over
# the wire, fetch the committed embedding, snapshot to disk, restart
# from the snapshot, and demand a bit-identical embedding response from
# the restored daemon. A final chaos leg restarts the daemon with fault
# injection (-chaos: latency + 5xx bursts) and proves the SDK-based
# client still converges, with the injection and error-code counters
# visible on /metrics. Run by the CI "daemon-smoke" job; needs curl.
#
# Usage: scripts/daemon_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-8371}"
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR/v1/topologies/main"
WORK="$(mktemp -d)"
BIN="$WORK/ftnet"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/ftnet

start_daemon() {
  "$BIN" serve -listen "$ADDR" -snapshot-dir "$WORK/snapshots" \
    -topology id=main,d=2,side=64,eps=0.5 &
  PID=$!
  for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "daemon did not become healthy" >&2
  exit 1
}

echo "== start =="
start_daemon
curl -fsS "http://$ADDR/healthz"; echo

echo "== report faults =="
curl -fsS -X POST "$BASE/faults" -d '{"nodes":[17,5000,20011,33333]}'; echo
curl -fsS -X DELETE "$BASE/faults" -d '{"nodes":[5000]}'; echo

echo "== report edge faults (Theorem 2's link-flap model) =="
# `ftnet edges` prints real host edges for this topology; the endpoint
# rejects anything else, all-or-nothing.
EDGES="$("$BIN" edges -d 2 -side 64 -eps 0.5 -count 2)"
curl -fsS -X POST "$BASE/edge-faults" -d "{\"edges\":$EDGES}"; echo
STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/edge-faults" -d '{"edges":[[7,7]]}' || true)"
if [ "$STATUS" != "400" ]; then
  echo "self-loop edge batch returned $STATUS, want 400" >&2
  exit 1
fi

echo "== fetch committed embedding =="
curl -fsS "$BASE/embedding" -o "$WORK/emb_before.json"

echo "== snapshot =="
curl -fsS -X POST "$BASE/snapshot"; echo
test -f "$WORK/snapshots/main.json"

echo "== restart from snapshot =="
kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""
start_daemon

echo "== diff restored embedding against the pre-restart one =="
curl -fsS "$BASE/embedding" -o "$WORK/emb_after.json"
if ! cmp -s "$WORK/emb_before.json" "$WORK/emb_after.json"; then
  echo "restored embedding differs from the pre-restart one:" >&2
  ls -l "$WORK"/emb_*.json >&2
  exit 1
fi
# The edge-fault set must have survived the restart too (the diff above
# already proves it bit-identically; this guards against both sides
# being empty) and be visible on the gauge.
if ! grep -q '"edge_faults":\[\[' "$WORK/emb_after.json"; then
  echo "restored embedding lost the edge-fault set" >&2
  exit 1
fi
if ! curl -fsS "http://$ADDR/metrics" | grep -q 'ftnetd_edge_faults{topology="main"} 2'; then
  echo "ftnetd_edge_faults gauge does not show the restored population" >&2
  exit 1
fi

echo "== binary wire: full snapshot decodes to the same JSON =="
WIRE_ACCEPT='Accept: application/x-ftnet-wire'
curl -fsS -H "$WIRE_ACCEPT" "$BASE/embedding" -o "$WORK/full.bin"
"$BIN" wire -in "$WORK/full.bin" >"$WORK/full_decoded.json"
if ! cmp -s "$WORK/emb_after.json" "$WORK/full_decoded.json"; then
  echo "binary full snapshot decodes differently from the JSON embedding:" >&2
  ls -l "$WORK/emb_after.json" "$WORK/full_decoded.json" >&2
  exit 1
fi

echo "== evicted generation answers 410 Gone, never stale data =="
# The delta ring does not survive a restart: any generation older than
# the restored head must be told to resync, not silently served.
GEN="$(sed -n 's/.*"generation":\([0-9]*\).*/\1/p' "$WORK/emb_after.json")"
STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -H "$WIRE_ACCEPT" "$BASE/embedding?since=$((GEN-1))" || true)"
if [ "$STATUS" != "410" ]; then
  echo "since=$((GEN-1)) after restart returned $STATUS, want 410" >&2
  exit 1
fi

echo "== binary wire: delta since the pre-mutation generation =="
# The first post-restart evaluation is a cold rebuild (a resync
# boundary in the ring), so warm the session with one mutation, take
# the full baseline there, then mutate again and fetch the delta.
curl -fsS -X POST "$BASE/faults" -d '{"nodes":[40404]}'; echo
curl -fsS "$BASE/embedding" -o "$WORK/emb_mid.json"
curl -fsS -H "$WIRE_ACCEPT" "$BASE/embedding" -o "$WORK/full_mid.bin"
GEN_MID="$(sed -n 's/.*"generation":\([0-9]*\).*/\1/p' "$WORK/emb_mid.json")"
curl -fsS -X POST "$BASE/faults" -d '{"nodes":[41414]}'; echo
curl -fsS "$BASE/embedding" -o "$WORK/emb_head.json"
curl -fsS -H "$WIRE_ACCEPT" "$BASE/embedding?since=$GEN_MID" -o "$WORK/delta.bin"
"$BIN" wire -in "$WORK/delta.bin" -base "$WORK/full_mid.bin" >"$WORK/delta_decoded.json"
if ! cmp -s "$WORK/emb_head.json" "$WORK/delta_decoded.json"; then
  echo "delta-applied embedding differs from the served head JSON:" >&2
  ls -l "$WORK/emb_head.json" "$WORK/delta_decoded.json" >&2
  exit 1
fi

echo "== malformed since is a caller error =="
STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -H "$WIRE_ACCEPT" "$BASE/embedding?since=-1" || true)"
if [ "$STATUS" != "400" ]; then
  echo "since=-1 returned $STATUS, want 400" >&2
  exit 1
fi

echo "== batching + delta metrics =="
curl -fsS "http://$ADDR/metrics" | grep -E 'ftnetd_(reembed_total|batch_mutations|delta_requests)' || true

echo "== chaos: the SDK client converges while the daemon injects faults =="
kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""
CHAOS_ADDR="127.0.0.1:$((PORT+1))"
"$BIN" serve -listen "$CHAOS_ADDR" \
  -topology id=main,d=2,side=64,eps=0.5 \
  -chaos 'latency-p=0.4,latency=5ms,error-p=0.3,seed=7' &
PID=$!
for i in $(seq 1 100); do
  curl -fsS "http://$CHAOS_ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
# examples/daemon is built on the resilient SDK (ftnet/client): it
# reports faults, syncs the checksum-verified embedding, follows the
# watch stream and repairs. Exit 0 is the convergence proof — every
# request ran the injected-503/latency gauntlet under the SDK's typed
# retry policy, and the final state verified against the daemon's
# checksum.
go run ./examples/daemon -addr "http://$CHAOS_ADDR" -topology main

echo "== chaos: injection and error-code counters on /metrics =="
CHAOS_METRICS="$(curl -fsS "http://$CHAOS_ADDR/metrics")"
echo "$CHAOS_METRICS" | grep -E 'ftnetd_(chaos_injections|errors)_total' || true
if ! echo "$CHAOS_METRICS" | grep -qE 'ftnetd_chaos_injections_total\{kind="(latency|error)"\} [1-9]'; then
  echo "chaos daemon injected nothing (all injection counters zero)" >&2
  exit 1
fi
if ! echo "$CHAOS_METRICS" | grep -q 'ftnetd_errors_total{code="unavailable"}'; then
  echo "typed error-code counters missing from /metrics" >&2
  exit 1
fi

echo "daemon smoke: OK (embedding survived the restart bit-identically; binary full and delta wires agree with JSON; SDK converged under chaos)"
