// Command errcheck-codes is the CI lint enforcing the fterr taxonomy
// (internal/fterr): in the packages that make up the public failure
// surface, every constructed error must carry a stable code.
//
// The rule, per non-test file in the enforced packages:
//
//   - errors.New is forbidden: it can only produce an uncoded error.
//     Use fterr.New (or a coded sentinel) instead.
//   - fmt.Errorf is allowed only when its format string contains %w —
//     wrapping preserves the code already on the chain. A %w-less
//     fmt.Errorf mints a fresh uncoded error and is rejected.
//
// A site that genuinely needs a bare error (none so far) can carry a
// trailing or preceding "//fterr:allow" comment to opt out, visibly.
//
// Usage: go run ./scripts/linters/errcheck-codes [repo root]
// Exits 1 with a file:line listing when violations exist.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// enforced lists the package directories whose errors cross a public
// boundary (module API, HTTP wire, SDK): exactly where an uncoded
// error would strand a caller without a retry class.
var enforced = []string{
	".",
	"client",
	"internal/server",
	"internal/wire",
	"internal/churn",
	"internal/fault",
	"internal/validate",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	for _, dir := range enforced {
		files, err := filepath.Glob(filepath.Join(root, dir, "*.go"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "errcheck-codes:", err)
			os.Exit(2)
		}
		sort.Strings(files)
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			v, err := lintFile(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "errcheck-codes:", err)
				os.Exit(2)
			}
			violations = append(violations, v...)
		}
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "errcheck-codes: %d uncoded error construction(s); use fterr.New/Wrap or fmt.Errorf with %%w (or annotate //fterr:allow):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
}

func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	// Lines carrying (or immediately preceding) an //fterr:allow marker.
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "fterr:allow") {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}

	var violations []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pos := fset.Position(call.Pos())
		report := func(why string) {
			if !allowed[pos.Line] {
				violations = append(violations, fmt.Sprintf("%s:%d: %s", path, pos.Line, why))
			}
		}
		switch {
		case pkg.Name == "errors" && sel.Sel.Name == "New":
			report("errors.New constructs an uncoded error")
		case pkg.Name == "fmt" && sel.Sel.Name == "Errorf":
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				// Non-literal format string: cannot prove %w, reject.
				report("fmt.Errorf with a non-literal format string (cannot verify %w)")
				return true
			}
			if !strings.Contains(lit.Value, "%w") {
				report("fmt.Errorf without %w mints an uncoded error")
			}
		}
		return true
	})
	return violations, nil
}
