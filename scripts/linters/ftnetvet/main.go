// Command ftnetvet runs the repo's analyzer suite (internal/analysis)
// over the whole module: the compile-time half of the contracts the
// probabilistic tests can only spot-check.
//
//	determinism — no wall clock / math/rand in engine packages; range
//	              over a map may not leak iteration order into
//	              committed state (appends without a sort, channel
//	              sends, non-commutative accumulation).
//	atomics     — a struct field accessed through sync/atomic anywhere
//	              must be accessed atomically everywhere.
//	hotpath     — //ftnet:hotpath functions contain no allocation
//	              constructs (make/new/literals/stray appends/fmt/
//	              string concat/capturing closures).
//	errcodes    — errors on the public failure surface carry fterr
//	              codes (errors.New forbidden, fmt.Errorf needs %w).
//
// A finding that is audited and genuinely safe escapes with
// "//lint:allow <analyzer> <justification>" — the justification is
// mandatory, each escape suppresses exactly one diagnostic, and stale
// escapes are themselves errors.
//
// Usage: go run ./scripts/linters/ftnetvet [module root]
//
// Exit codes (script-stable): 0 clean, 1 violations, 2 load error.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ftnet/internal/analysis"
	"ftnet/internal/analysis/atomics"
	"ftnet/internal/analysis/determinism"
	"ftnet/internal/analysis/errcodes"
	"ftnet/internal/analysis/hotpath"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftnetvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(mod, []*analysis.Analyzer{
		determinism.New(mod.Path),
		atomics.New(),
		hotpath.New(),
		errcodes.New(mod.Path),
	})
	if len(diags) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "ftnetvet: %d violation(s):\n", len(diags))
	for _, d := range diags {
		if rel, err := filepath.Rel(mod.Root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(os.Stderr, "  "+d.String())
	}
	os.Exit(1)
}
