#!/usr/bin/env bash
# Fleet-scale serve-path benchmark: run `ftnet loadgen` with a
# 1000-client mixed fleet (JSON-full pollers, binary-full pollers,
# binary-delta ?since= chasers, /watch subscribers) against an
# in-process ftnetd under standing fault churn, and write the
# BENCH_pr6.json report with per-mode latency quantiles and
# bytes-per-update. Run by the CI "loadgen" job (report-only).
#
# Client mix, duration, and churn are env-overridable:
#   LOADGEN_JSON_CLIENTS=100 LOADGEN_DELTA_CLIENTS=850 ... scripts/loadgen.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LOADGEN_OUT:-BENCH_pr6.json}"
SIDE="${LOADGEN_SIDE:-64}"
JSON_CLIENTS="${LOADGEN_JSON_CLIENTS:-250}"
BINFULL_CLIENTS="${LOADGEN_BINFULL_CLIENTS:-50}"
DELTA_CLIENTS="${LOADGEN_DELTA_CLIENTS:-500}"
WATCH_CLIENTS="${LOADGEN_WATCH_CLIENTS:-200}"
POLL_INTERVAL="${LOADGEN_POLL_INTERVAL:-2s}"
CHURN_RATE="${LOADGEN_CHURN_RATE:-0.75}"
CHURN_NODES="${LOADGEN_CHURN_NODES:-1}"
DURATION="${LOADGEN_DURATION:-30s}"
WARMUP="${LOADGEN_WARMUP:-8s}"

go run ./cmd/ftnet loadgen \
  -side "$SIDE" \
  -duration "$DURATION" \
  -warmup "$WARMUP" \
  -json-clients "$JSON_CLIENTS" \
  -binfull-clients "$BINFULL_CLIENTS" \
  -delta-clients "$DELTA_CLIENTS" \
  -watch-clients "$WATCH_CLIENTS" \
  -poll-interval "$POLL_INTERVAL" \
  -churn-rate "$CHURN_RATE" \
  -churn-nodes "$CHURN_NODES" \
  -seed 1 \
  -out "$OUT"

echo "== acceptance summary =="
sed -n '/"acceptance"/,$p' "$OUT"
